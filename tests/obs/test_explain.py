"""explain_abort: reconstructing the dangerous structure from the trace."""

from repro.obs.explain import PivotTriple, explain_abort
from repro.obs.trace import EventTrace, EventType


class TestPivotTriple:
    def test_render_ids(self):
        assert PivotTriple(1, 2, 3).render() == "T1 --rw--> T2 --rw--> T3"

    def test_render_degraded_slots(self):
        text = PivotTriple("multiple", 2, None).render()
        assert text == "<multiple> --rw--> T2 --rw--> ?"


class TestExplainAbort:
    def test_no_abort_recorded(self):
        trace = EventTrace()
        trace.emit(EventType.BEGIN, 1)
        explanation = explain_abort(trace, 1)
        assert not explanation.found
        assert "no abort recorded" in explanation.render()

    def test_reason_from_abort_event(self):
        trace = EventTrace()
        trace.emit(EventType.ABORT, 5, reason="deadlock")
        explanation = explain_abort(trace, 5)
        assert explanation.found and explanation.reason == "deadlock"

    def test_pivot_from_victim_event(self):
        trace = EventTrace()
        trace.emit(EventType.RW_CONFLICT, 1, peer=2)
        trace.emit(
            EventType.VICTIM, 2, cause="unsafe",
            pivot=2, t_in=1, t_out=3, policy="pivot",
        )
        trace.emit(EventType.ABORT, 2, reason="unsafe")
        explanation = explain_abort(trace, 2)
        assert explanation.pivot.t_in == 1
        assert explanation.pivot.pivot == 2
        assert explanation.pivot.t_out == 3
        assert explanation.victim_policy == "pivot"
        assert (1, 2, explanation.conflicts[0][2]) == explanation.conflicts[0]

    def test_fallback_reconstruction_from_rw_edges(self):
        # No victim/unsafe event recorded a triple (basic boolean tracker):
        # the pivot is rebuilt from raw rw edges touching the transaction.
        trace = EventTrace()
        trace.emit(EventType.RW_CONFLICT, 1, peer=2)  # T1 --rw--> T2 (in)
        trace.emit(EventType.RW_CONFLICT, 2, peer=3)  # T2 --rw--> T3 (out)
        trace.emit(EventType.ABORT, 2, reason="unsafe")
        explanation = explain_abort(trace, 2)
        assert explanation.pivot == PivotTriple(t_in=1, pivot=2, t_out=3)

    def test_fallback_marks_multiple_peers(self):
        trace = EventTrace()
        trace.emit(EventType.RW_CONFLICT, 1, peer=9)
        trace.emit(EventType.RW_CONFLICT, 2, peer=9)
        trace.emit(EventType.ABORT, 9, reason="unsafe")
        explanation = explain_abort(trace, 9)
        assert explanation.pivot.t_in == "multiple"

    def test_render_contains_structure(self):
        trace = EventTrace()
        trace.emit(
            EventType.VICTIM, 2, cause="unsafe", pivot=2, t_in=1, t_out=3,
            policy="pivot",
        )
        trace.emit(EventType.ABORT, 2, reason="unsafe")
        text = explain_abort(trace, 2).render()
        assert "reason=unsafe" in text
        assert "T1 --rw--> T2 --rw--> T3" in text
        assert "victim policy: pivot" in text
