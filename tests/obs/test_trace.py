"""Event-trace layer: sinks, filtering, engine integration."""

import json

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.obs.trace import (
    CallbackSink,
    EventTrace,
    EventType,
    JsonlFileSink,
    RingBufferSink,
)

from tests.conftest import fill


def reject_constant(value):
    raise ValueError(f"non-standard JSON constant: {value!r}")


class TestRingBufferSink:
    def test_bounded_and_counts_drops(self):
        trace = EventTrace(RingBufferSink(capacity=3))
        for index in range(5):
            trace.emit(EventType.BEGIN, index)
        sink = trace.sinks[0]
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [event.txn_id for event in sink.events()] == [2, 3, 4]

    def test_clear(self):
        sink = RingBufferSink(capacity=4)
        EventTrace(sink).emit(EventType.BEGIN, 1)
        sink.clear()
        assert len(sink) == 0 and sink.dropped == 0


class TestJsonlFileSink:
    def test_every_line_is_strict_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlFileSink(path, flush_every=1) as sink:
            trace = EventTrace(sink)
            trace.emit(EventType.BEGIN, 7, isolation="ssi")
            trace.emit(EventType.ABORT, 7, reason="unsafe", bad=float("nan"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        events = [json.loads(line, parse_constant=reject_constant) for line in lines]
        assert events[0]["type"] == "begin" and events[0]["txn"] == 7
        assert events[1]["reason"] == "unsafe"
        assert events[1]["bad"] is None  # non-finite floats scrubbed


class TestEventTrace:
    def test_sequence_is_monotonic(self):
        trace = EventTrace()
        events = [trace.emit(EventType.BEGIN, i) for i in range(4)]
        assert [event.seq for event in events] == [0, 1, 2, 3]

    def test_callback_sink(self):
        seen = []
        trace = EventTrace(CallbackSink(seen.append), RingBufferSink())
        trace.emit(EventType.COMMIT, 1)
        assert len(seen) == 1 and seen[0].type == "commit"

    def test_filter_by_txn_includes_peer_edges(self):
        trace = EventTrace()
        trace.emit(EventType.RW_CONFLICT, 1, peer=2)
        trace.emit(EventType.BEGIN, 3)
        events = trace.events(txn_id=2)
        assert len(events) == 1 and events[0].data["peer"] == 2

    def test_filter_by_type(self):
        trace = EventTrace()
        trace.emit(EventType.BEGIN, 1)
        trace.emit(EventType.COMMIT, 1)
        assert [e.type for e in trace.events(etype=EventType.COMMIT)] == ["commit"]
        both = trace.events(etype=(EventType.BEGIN, EventType.COMMIT))
        assert len(both) == 2


class TestDatabaseIntegration:
    def test_tracing_off_by_default(self):
        db = Database(EngineConfig())
        assert db.trace is None
        assert db.locks.trace is None

    def test_enable_then_disable(self):
        db = Database(EngineConfig())
        trace = db.enable_tracing()
        assert db.trace is trace and db.locks.trace is trace
        db.disable_tracing()
        assert db.trace is None and db.locks.trace is None

    def test_lifecycle_events_for_a_commit(self):
        db = Database(EngineConfig())
        trace = db.enable_tracing()
        fill(db, "t", {"k": 1})
        txn = db.begin("ssi")
        txn.read("t", "k")
        txn.write("t", "k", 2)
        txn.commit()
        types = [event.type for event in trace.events(txn_id=txn.id)]
        assert types[0] == EventType.BEGIN
        assert EventType.SNAPSHOT in types
        assert types[-1] in (EventType.COMMIT, EventType.CLEANUP)

    def test_abort_event_carries_reason(self):
        db = Database(EngineConfig())
        trace = db.enable_tracing()
        txn = db.begin("si")
        db.abort(txn)
        aborts = trace.events(txn_id=txn.id, etype=EventType.ABORT)
        assert len(aborts) == 1
        assert aborts[0].data["reason"] == "aborted"
