"""Property tests for the lock manager's derived indexes (PR-4).

The optimized :class:`LockManager` answers its hot-path queries from
derived state — the per-owner lock index (``_by_owner``), the packed
per-head mode summary (``_LockHead.counts``/``mask``), the per-owner
waiting-request index (``_waiting``), the per-owner SIREAD counters
(``_siread_counts``) and the global granted counter — instead of walking
the lock table.  These tests drive random sequences of acquires,
releases, SIREAD drops, wait cancellations and gap-lock inheritance, then
rebuild every index from the ground-truth table (the per-resource heads)
and require exact agreement.
"""

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.locking.manager import (
    LockManager,
    RequestState,
    gap_resource,
    record_resource,
)
from repro.locking.modes import LockMode

N_OWNERS = 5

RESOURCES = [record_resource("t", k) for k in range(4)] + [
    gap_resource("t", k) for k in range(2)
]

MODES = list(LockMode)


@dataclass
class Owner:
    id: int
    begin_ts: int = 0


def rebuild_ground_truth(lm: LockManager):
    """Recompute every derived index by walking the per-resource heads."""
    by_owner: dict = {}
    siread_counts: dict = {}
    granted_total = 0
    for resource, head in lm._heads.items():
        assert not head.empty(), f"empty head for {resource!r} not reclaimed"
        mode_counts = {mode: 0 for mode in MODES}
        for owner_id, lock in head.granted.items():
            assert lock.resource == resource
            assert lock.owner.id == owner_id
            assert lock.mask, "granted lock carrying no modes"
            granted_total += 1
            by_owner.setdefault(owner_id, {})[resource] = lock
            for mode in MODES:
                if lock.mask & mode.bit:
                    mode_counts[mode] += 1
            if lock.mask & LockMode.SIREAD.bit:
                siread_counts[owner_id] = siread_counts.get(owner_id, 0) + 1
        # the packed summary must agree with the recount, mode by mode
        expected_mask = 0
        for mode, count in mode_counts.items():
            assert head.mode_count(mode) == count
            if count:
                expected_mask |= mode.bit
        assert head.mask == expected_mask
    waiting: dict = {}
    for head in lm._heads.values():
        for request in head.queue or ():
            if request.state is RequestState.WAITING:
                waiting.setdefault(request.owner.id, set()).add(request)
    return by_owner, siread_counts, granted_total, waiting


def check_agreement(lm: LockManager, owners):
    by_owner, siread_counts, granted_total, waiting = rebuild_ground_truth(lm)
    assert {o: d for o, d in lm._by_owner.items() if d} == by_owner
    assert dict(lm._siread_counts) == siread_counts
    assert lm.table_size() == granted_total
    assert {o: s for o, s in lm._waiting.items() if s} == waiting
    # public queries answered from the indexes agree with the table
    for owner in owners:
        held = by_owner.get(owner.id, {})
        assert {
            lock.resource for lock in lm.locks_held_by(owner)
        } == set(held)
        assert lm.holds_any_siread(owner) == (
            siread_counts.get(owner.id, 0) > 0
        )
        for resource in RESOURCES:
            lock = held.get(resource)
            assert lm.holds(owner, resource) == (lock is not None)
            for mode in MODES:
                expected = lock is not None and bool(lock.mask & mode.bit)
                assert lm.holds(owner, resource, mode) == expected


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("acquire"),
            st.integers(0, N_OWNERS - 1),
            st.integers(0, len(RESOURCES) - 1),
            st.sampled_from(MODES),
        ),
        st.tuples(
            st.just("release_all"),
            st.integers(0, N_OWNERS - 1),
            st.booleans(),  # keep_siread
        ),
        st.tuples(st.just("drop_siread"), st.integers(0, N_OWNERS - 1)),
        st.tuples(st.just("cancel_waits"), st.integers(0, N_OWNERS - 1)),
        st.tuples(
            st.just("inherit"),
            st.integers(len(RESOURCES) - 2, len(RESOURCES) - 1),  # from gap
            st.integers(len(RESOURCES) - 2, len(RESOURCES) - 1),  # to gap
            st.integers(0, N_OWNERS - 1),  # excluded owner
        ),
    ),
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops)
def test_indexes_agree_with_lock_table(sequence):
    lm = LockManager()  # no deadlock handler: waiters just queue
    owners = [Owner(i, begin_ts=i) for i in range(N_OWNERS)]
    for op in sequence:
        kind = op[0]
        if kind == "acquire":
            _, owner, resource, mode = op
            lm.acquire(owners[owner], RESOURCES[resource], mode)
        elif kind == "release_all":
            _, owner, keep_siread = op
            lm.release_all(owners[owner], keep_siread=keep_siread)
        elif kind == "drop_siread":
            lm.drop_siread_locks(owners[op[1]])
        elif kind == "cancel_waits":
            lm.cancel_waits(owners[op[1]])
        else:
            _, src, dst, excluded = op
            lm.inherit_siread_locks(
                RESOURCES[src], RESOURCES[dst], owners[excluded]
            )
        check_agreement(lm, owners)
    # drain everything: the indexes must end empty along with the table
    for owner in owners:
        lm.release_all(owner)
        lm.drop_siread_locks(owner)
    check_agreement(lm, owners)
    assert lm.table_size() == 0
    assert not lm._heads
    assert not any(lm._by_owner.values())
    assert not lm._siread_counts
