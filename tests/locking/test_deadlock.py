"""Waits-for graph and deadlock detection tests."""

from dataclasses import dataclass

from repro.locking.deadlock import DeadlockDetector, WaitsForGraph
from repro.locking.manager import LockManager, RequestState, record_resource
from repro.locking.modes import LockMode

X = LockMode.EXCLUSIVE


@dataclass
class Owner:
    id: int
    begin_ts: int = 0


class TestWaitsForGraph:
    def test_no_cycle(self):
        graph = WaitsForGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert graph.find_cycle_through(1) == []
        assert graph.find_cycles() == []

    def test_two_cycle(self):
        graph = WaitsForGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        cycle = graph.find_cycle_through(1)
        assert set(cycle) == {1, 2}
        assert len(graph.find_cycles()) == 1

    def test_long_cycle(self):
        graph = WaitsForGraph()
        for src, dst in ((1, 2), (2, 3), (3, 4), (4, 1), (4, 5)):
            graph.add_edge(src, dst)
        assert set(graph.find_cycle_through(3)) == {1, 2, 3, 4}

    def test_self_edges_ignored(self):
        graph = WaitsForGraph()
        graph.add_edge(1, 1)
        assert len(graph) == 0

    def test_remove_node_breaks_cycle(self):
        graph = WaitsForGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        graph.remove_node(2)
        assert graph.find_cycle_through(1) == []

    def test_multiple_disjoint_cycles(self):
        graph = WaitsForGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        graph.add_edge(3, 4)
        graph.add_edge(4, 3)
        assert len(graph.find_cycles()) == 2


class TestImmediateDetection:
    def test_deadlock_resolved_by_handler(self):
        victims = []

        def handler(cycle, request):
            victim = request.owner
            victims.append(victim.id)
            lm.cancel_waits(victim, RuntimeError("deadlock"))
            return victim

        lm = LockManager(deadlock_handler=handler)
        a, b = Owner(1), Owner(2)
        ra, rb = record_resource("t", "a"), record_resource("t", "b")
        lm.acquire(a, ra, X)
        lm.acquire(b, rb, X)
        lm.acquire(a, rb, X)  # a waits for b
        result = lm.acquire(b, ra, X)  # b waits for a -> cycle
        assert victims == [2]
        assert result.request.state is RequestState.DENIED

    def test_no_false_deadlock(self):
        called = []
        lm = LockManager(deadlock_handler=lambda c, r: called.append(1))
        a, b = Owner(1), Owner(2)
        ra = record_resource("t", "a")
        lm.acquire(a, ra, X)
        lm.acquire(b, ra, X)  # plain wait, no cycle
        assert called == []


class TestPeriodicSweep:
    def test_sweep_finds_victims(self):
        lm = LockManager()  # no immediate handler
        a, b = Owner(1, begin_ts=10), Owner(2, begin_ts=20)
        ra, rb = record_resource("t", "a"), record_resource("t", "b")
        lm.acquire(a, ra, X)
        lm.acquire(b, rb, X)
        lm.acquire(a, rb, X)
        lm.acquire(b, ra, X)
        aborted = []
        detector = DeadlockDetector()
        detector.sweep(lm, abort=lambda victim: aborted.append(victim.id))
        # youngest (largest begin_ts) chosen by default
        assert aborted == [2]
        assert detector.detected == 1

    def test_sweep_without_deadlock_is_quiet(self):
        lm = LockManager()
        a = Owner(1)
        lm.acquire(a, record_resource("t", "a"), X)
        detector = DeadlockDetector()
        assert detector.sweep(lm, abort=lambda v: None) == []

    def test_victim_policies(self):
        old, young = Owner(1, begin_ts=1), Owner(2, begin_ts=9)
        assert DeadlockDetector.youngest([old, young]) is young
        assert DeadlockDetector.oldest([old, young]) is old
