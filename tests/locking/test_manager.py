"""Lock manager unit tests: grants, queuing, upgrades, SIREAD handling."""

from dataclasses import dataclass, field

import pytest

from repro.locking.manager import (
    AcquireStatus,
    LockManager,
    RequestState,
    gap_resource,
    record_resource,
)
from repro.locking.modes import LockMode

S, X, SIREAD = LockMode.SHARED, LockMode.EXCLUSIVE, LockMode.SIREAD


@dataclass
class Owner:
    id: int
    begin_ts: int = 0


@pytest.fixture
def lm():
    return LockManager()


@pytest.fixture
def owners():
    return [Owner(i, begin_ts=i) for i in range(8)]


R = record_resource("t", "k")
R2 = record_resource("t", "k2")


class TestBasicGrants:
    def test_fresh_grant(self, lm, owners):
        result = lm.acquire(owners[0], R, X)
        assert result.granted
        assert lm.holds(owners[0], R, X)

    def test_shared_coexist(self, lm, owners):
        assert lm.acquire(owners[0], R, S).granted
        assert lm.acquire(owners[1], R, S).granted
        assert len(lm.locks_on(R)) == 2

    def test_exclusive_blocks_shared(self, lm, owners):
        lm.acquire(owners[0], R, X)
        result = lm.acquire(owners[1], R, S)
        assert result.status is AcquireStatus.WAIT
        assert result.request.state is RequestState.WAITING

    def test_idempotent_reacquire(self, lm, owners):
        lm.acquire(owners[0], R, X)
        again = lm.acquire(owners[0], R, X)
        assert again.granted
        assert len(lm.locks_on(R)) == 1

    def test_weaker_request_noop_when_stronger_held(self, lm, owners):
        lm.acquire(owners[0], R, X)
        assert lm.acquire(owners[0], R, S).granted
        assert lm.holds(owners[0], R, X)  # still exclusive


class TestFifoAndPromotion:
    def test_release_promotes_in_fifo_order(self, lm, owners):
        lm.acquire(owners[0], R, X)
        wait1 = lm.acquire(owners[1], R, X).request
        wait2 = lm.acquire(owners[2], R, X).request
        lm.release_all(owners[0])
        assert wait1.state is RequestState.GRANTED
        assert wait2.state is RequestState.WAITING
        lm.release_all(owners[1])
        assert wait2.state is RequestState.GRANTED

    def test_release_grants_all_compatible_waiters(self, lm, owners):
        lm.acquire(owners[0], R, X)
        waits = [lm.acquire(owners[i], R, S).request for i in (1, 2, 3)]
        lm.release_all(owners[0])
        assert all(w.state is RequestState.GRANTED for w in waits)

    def test_fresh_shared_queues_behind_waiting_exclusive(self, lm, owners):
        lm.acquire(owners[0], R, S)
        blocked_x = lm.acquire(owners[1], R, X)
        assert blocked_x.status is AcquireStatus.WAIT
        # FIFO fairness: a later SHARED must not starve the writer.
        late_s = lm.acquire(owners[2], R, S)
        assert late_s.status is AcquireStatus.WAIT

    def test_cancel_waits_unblocks_queue(self, lm, owners):
        lm.acquire(owners[0], R, X)
        first = lm.acquire(owners[1], R, X).request
        second = lm.acquire(owners[2], R, X).request
        error = RuntimeError("doomed")
        lm.cancel_waits(owners[1], error)
        assert first.state is RequestState.DENIED
        assert first.error is error
        lm.release_all(owners[0])
        assert second.state is RequestState.GRANTED


class TestUpgrades:
    def test_shared_to_exclusive_upgrade_when_alone(self, lm, owners):
        lm.acquire(owners[0], R, S)
        result = lm.acquire(owners[0], R, X)
        assert result.granted
        assert lm.holds(owners[0], R, X)
        assert len(lm.locks_on(R)) == 1

    def test_upgrade_waits_for_other_shared(self, lm, owners):
        lm.acquire(owners[0], R, S)
        lm.acquire(owners[1], R, S)
        result = lm.acquire(owners[0], R, X)
        assert result.status is AcquireStatus.WAIT
        lm.release_all(owners[1])
        assert result.request.state is RequestState.GRANTED
        assert lm.holds(owners[0], R, X)

    def test_upgrader_jumps_plain_queue(self, lm, owners):
        lm.acquire(owners[0], R, S)
        lm.acquire(owners[1], R, S)
        plain = lm.acquire(owners[2], R, X).request
        upgrade = lm.acquire(owners[1], R, X).request
        lm.release_all(owners[0])
        assert upgrade.state is RequestState.GRANTED
        assert plain.state is RequestState.WAITING


class TestSiread:
    def test_siread_never_waits_even_under_exclusive(self, lm, owners):
        lm.acquire(owners[0], R, X)
        result = lm.acquire(owners[1], R, SIREAD)
        assert result.granted
        # ... and reports the exclusive holder for conflict marking.
        assert [l.owner_id for l in result.detection_conflicts] == [0]

    def test_exclusive_ignores_siread_but_reports_it(self, lm, owners):
        lm.acquire(owners[0], R, SIREAD)
        result = lm.acquire(owners[1], R, X)
        assert result.granted
        assert [l.owner_id for l in result.detection_conflicts] == [0]

    def test_release_keep_siread(self, lm, owners):
        lm.acquire(owners[0], R, SIREAD)
        lm.acquire(owners[0], R2, X)
        lm.release_all(owners[0], keep_siread=True)
        assert lm.holds(owners[0], R, SIREAD)
        assert not lm.holds(owners[0], R2)
        assert lm.holds_any_siread(owners[0])

    def test_drop_siread_locks(self, lm, owners):
        lm.acquire(owners[0], R, SIREAD)
        lm.acquire(owners[0], R2, SIREAD)
        assert lm.drop_siread_locks(owners[0]) == 2
        assert not lm.holds_any_siread(owners[0])
        assert lm.table_size() == 0

    def test_siread_upgraded_to_exclusive_is_not_kept(self, lm, owners):
        # Section 3.7.3: read-modify-write keeps only the EXCLUSIVE lock.
        lm.acquire(owners[0], R, SIREAD)
        result = lm.acquire(owners[0], R, X)
        assert result.granted
        assert lm.holds(owners[0], R, X)
        lm.release_all(owners[0], keep_siread=True)
        assert not lm.holds(owners[0], R)

    def test_multiple_sireads_on_one_item(self, lm, owners):
        for i in range(4):
            assert lm.acquire(owners[i], R, SIREAD).granted
        assert len(lm.locks_on(R)) == 4


class TestResources:
    def test_gap_and_record_are_distinct(self, lm, owners):
        lm.acquire(owners[0], record_resource("t", 5), X)
        # A gap lock on the same key does not conflict with the record
        # lock: "a lock on the gap just before x ... does not conflict
        # with locks on item x itself" (Section 2.5.2).
        result = lm.acquire(owners[1], gap_resource("t", 5), X)
        assert result.granted

    def test_table_size_counts_granted(self, lm, owners):
        lm.acquire(owners[0], R, S)
        lm.acquire(owners[1], R, S)
        lm.acquire(owners[0], R2, X)
        assert lm.table_size() == 3


class TestStats:
    def test_wait_and_acquire_counters(self, lm, owners):
        lm.acquire(owners[0], R, X)
        lm.acquire(owners[1], R, X)
        assert lm.stats["acquires"] == 2
        assert lm.stats["waits"] == 1
