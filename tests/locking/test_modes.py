"""Lock mode compatibility matrix tests (Section 3.2 requirements)."""

import pytest

from repro.locking.modes import LockMode, blocks, compatible, is_siread

S, X, SIREAD = LockMode.SHARED, LockMode.EXCLUSIVE, LockMode.SIREAD
II = LockMode.INSERT_INTENTION


@pytest.mark.parametrize(
    "held,requested,expected",
    [
        (S, S, True),
        (S, X, False),
        (X, S, False),
        (X, X, False),
        # SIREAD never blocks and is never blocked — the defining
        # property of the new mode.
        (SIREAD, S, True),
        (SIREAD, X, True),
        (SIREAD, SIREAD, True),
        (S, SIREAD, True),
        (X, SIREAD, True),
        # Insert intention: two inserts into one gap coexist; an S2PL
        # scan's SHARED gap lock blocks inserts; SIREAD only detects.
        (II, II, True),
        (II, SIREAD, True),
        (SIREAD, II, True),
        (S, II, False),
        (II, S, False),
        (X, II, False),
        (II, X, False),
    ],
)
def test_compatibility(held, requested, expected):
    assert compatible(held, requested) is expected
    assert blocks(held, requested) is (not expected)


def test_is_siread():
    assert is_siread(SIREAD)
    assert not is_siread(S)
    assert not is_siread(X)
