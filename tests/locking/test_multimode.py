"""Multi-mode locks and gap-lock machinery tests.

A lock can carry several modes at once (a scan's gap SIREAD plus the
owner's own insert-intention); these tests pin down the mode-set
semantics and the gap-inheritance rule used when inserts split gaps.
"""

from dataclasses import dataclass

import pytest

from repro.locking.manager import (
    LockManager,
    gap_resource,
    record_resource,
)
from repro.locking.modes import LockMode

S, X, SIREAD, II = (
    LockMode.SHARED,
    LockMode.EXCLUSIVE,
    LockMode.SIREAD,
    LockMode.INSERT_INTENTION,
)


@dataclass
class Owner:
    id: int
    begin_ts: int = 0


@pytest.fixture
def lm():
    return LockManager()


GAP = gap_resource("t", 10)
GAP2 = gap_resource("t", 5)


class TestModeSets:
    def test_siread_survives_insert_intention(self, lm):
        """The fix for the phantom-sentinel bug: II must not replace a
        gap SIREAD held by the same transaction."""
        owner = Owner(1)
        lm.acquire(owner, GAP, SIREAD)
        lm.acquire(owner, GAP, II)
        assert lm.holds(owner, GAP, SIREAD)
        assert lm.holds(owner, GAP, II)

    def test_combined_lock_still_detected_by_writers(self, lm):
        scanner = Owner(1)
        inserter = Owner(2)
        lm.acquire(scanner, GAP, SIREAD)
        lm.acquire(scanner, GAP, II)  # scanner also inserts into its gap
        result = lm.acquire(inserter, GAP, II)
        assert result.granted
        assert [l.owner_id for l in result.detection_conflicts] == [1]

    def test_exclusive_discards_siread_on_upgrade(self, lm):
        owner = Owner(1)
        rec = record_resource("t", 1)
        lm.acquire(owner, rec, SIREAD)
        lm.acquire(owner, rec, X)
        assert lm.holds(owner, rec, X)
        assert not lm.holds(owner, rec, SIREAD)

    def test_release_keep_siread_sheds_blocking_modes(self, lm):
        owner = Owner(1)
        waiter = Owner(2)
        lm.acquire(owner, GAP, SIREAD)
        lm.acquire(owner, GAP, II)
        blocked = lm.acquire(waiter, GAP, S)  # SHARED blocked by II
        assert not blocked.granted
        lm.release_all(owner, keep_siread=True)
        assert lm.holds(owner, GAP, SIREAD)
        assert not lm.holds(owner, GAP, II)
        # SHARED vs the remaining SIREAD is compatible: waiter promoted.
        from repro.locking.manager import RequestState
        assert blocked.request.state is RequestState.GRANTED

    def test_exclusive_covers_weaker_requests(self, lm):
        owner = Owner(1)
        rec = record_resource("t", 1)
        lm.acquire(owner, rec, X)
        assert lm.acquire(owner, rec, S).granted
        assert lm.acquire(owner, rec, SIREAD).granted
        assert lm.holds(owner, rec, X)


class TestGapInheritance:
    def test_siread_copied_to_new_gap(self, lm):
        scanner = Owner(1)
        inserter = Owner(2)
        lm.acquire(scanner, GAP, SIREAD)
        copied = lm.inherit_siread_locks(GAP, GAP2, exclude_owner=inserter)
        assert copied == 1
        assert lm.holds(scanner, GAP2, SIREAD)

    def test_inserter_itself_excluded(self, lm):
        inserter = Owner(2)
        lm.acquire(inserter, GAP, SIREAD)
        copied = lm.inherit_siread_locks(GAP, GAP2, exclude_owner=inserter)
        assert copied == 0

    def test_existing_siread_not_duplicated(self, lm):
        scanner = Owner(1)
        inserter = Owner(2)
        lm.acquire(scanner, GAP, SIREAD)
        lm.acquire(scanner, GAP2, SIREAD)
        copied = lm.inherit_siread_locks(GAP, GAP2, exclude_owner=inserter)
        assert copied == 0
        assert len(lm.locks_on(GAP2)) == 1

    def test_non_siread_modes_not_inherited(self, lm):
        other = Owner(3)
        inserter = Owner(2)
        lm.acquire(other, GAP, II)
        copied = lm.inherit_siread_locks(GAP, GAP2, exclude_owner=inserter)
        assert copied == 0

    def test_empty_source_gap(self, lm):
        assert lm.inherit_siread_locks(GAP, GAP2, exclude_owner=Owner(9)) == 0


class TestEndToEndGapSplit:
    def test_split_gap_still_detects_phantom(self):
        """Committed scanner; insert splits its gap; a second insert into
        the new sub-gap must still conflict with the (inherited) SIREAD."""
        from repro import Database, EngineConfig
        from repro.errors import TransactionAbortedError

        db = Database(EngineConfig(record_history=True))
        db.create_table("t")
        db.load("t", [(0, "a"), (100, "z")])

        scanner = db.begin("ssi")
        scanner.scan("t", 0, 100)

        # `second` becomes concurrent with the scanner: its snapshot is
        # fixed before the scanner commits.
        second = db.begin("ssi")
        second.read("t", 0)

        scanner.commit()  # suspended with gap SIREADs (overlap: second)

        splitter = db.begin("ssi")
        splitter.insert("t", 50, "mid")   # splits the (0,100) gap
        splitter.commit()

        marked_before = db.tracker.stats["marked"]
        try:
            second.insert("t", 25, "sub")  # inside the new sub-gap
            second.commit()
        except TransactionAbortedError:
            pass
        # The inherited SIREAD on gap:50 made the rw conflict between the
        # committed scanner and the concurrent inserter visible.
        assert db.tracker.stats["marked"] > marked_before
