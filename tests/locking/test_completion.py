"""Completion-driven lock resolution: callback hardening and the
cancel-vs-grant race (exactly one terminal state, callbacks fire once)."""

from __future__ import annotations

import threading

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.waits import Completion
from repro.errors import LockTimeoutError
from repro.locking.manager import (
    AcquireStatus,
    LockManager,
    RequestState,
    record_resource,
)
from repro.locking.modes import LockMode
from repro.obs.trace import EventType


class Owner:
    def __init__(self, id: int, begin_ts: int = 0):
        self.id = id
        self.begin_ts = begin_ts


R = record_resource("t", "k")


def waiting_request(lm, holder, waiter, mode=LockMode.SHARED):
    lm.acquire(holder, R, LockMode.EXCLUSIVE)
    result = lm.acquire_nowait(waiter, R, mode)
    assert result.status is AcquireStatus.WAIT
    return result.request


class TestCompletion:
    def test_set_is_idempotent_first_wins(self):
        completion = Completion()
        fired = []
        completion.on_fire(lambda c: fired.append(1))
        assert completion.set() is True
        assert completion.set() is False
        assert fired == [1]
        assert completion.fired

    def test_late_subscriber_fires_immediately(self):
        completion = Completion()
        completion.set()
        fired = []
        completion.on_fire(lambda c: fired.append(1))
        assert fired == [1]

    def test_wait_unblocks_on_set(self):
        completion = Completion()
        seen = threading.Event()
        thread = threading.Thread(
            target=lambda: (completion.wait(timeout=10), seen.set()))
        thread.start()
        completion.set()
        assert seen.wait(timeout=10)
        thread.join()


class TestCallbackHardening:
    def test_failing_callback_does_not_skip_the_rest(self):
        """One raising callback must not half-resolve the request: every
        other subscriber still fires, the request reaches its terminal
        state, and the failure is accounted, not propagated."""
        lm = LockManager()
        holder, waiter = Owner(1), Owner(2)
        request = waiting_request(lm, holder, waiter)
        calls = []
        request.on_resolve(lambda r: calls.append("first"))
        request.on_resolve(lambda r: (_ for _ in ()).throw(RuntimeError("boom")))
        request.on_resolve(lambda r: calls.append("last"))
        lm.release_all(holder)  # grants the waiter, runs callbacks
        assert request.state is RequestState.GRANTED
        assert calls == ["first", "last"]
        assert lm.stats["lock_callback_errors"] == 1

    def test_failing_immediate_callback_on_resolved_request(self):
        lm = LockManager()
        holder, waiter = Owner(1), Owner(2)
        request = waiting_request(lm, holder, waiter)
        lm.release_all(holder)
        assert request.resolved
        # subscribing after resolution runs immediately — and a raising
        # late subscriber is accounted the same way
        request.on_resolve(lambda r: (_ for _ in ()).throw(ValueError("late")))
        assert lm.stats["lock_callback_errors"] == 1

    def test_callback_error_emits_trace_event(self):
        db = Database(EngineConfig())
        db.enable_tracing()
        db.create_table("t")
        db.load("t", [("k", 0)])
        holder = db.begin("s2pl")
        holder.read_for_update("t", "k")
        waiter = db.begin("s2pl")
        result = db.locks.acquire_nowait(
            waiter, record_resource("t", "k"), LockMode.SHARED)
        assert result.status is AcquireStatus.WAIT
        result.request.on_resolve(
            lambda r: (_ for _ in ()).throw(RuntimeError("kaput")))
        holder.commit()
        events = [e for e in db.trace.events()
                  if e.type is EventType.CALLBACK_ERROR]
        assert len(events) == 1
        assert events[0].data["error"] == "RuntimeError"
        assert db.metrics.snapshot()["counters"]["locks"][
            "lock_callback_errors"] == 1
        db.abort(waiter)


class TestCancelVsResolveRace:
    def test_double_resolve_first_wins(self):
        lm = LockManager()
        holder, waiter = Owner(1), Owner(2)
        request = waiting_request(lm, holder, waiter)
        calls = []
        request.on_resolve(lambda r: calls.append(r.state))
        assert request._resolve(RequestState.GRANTED) is True
        assert request._resolve(
            RequestState.DENIED, LockTimeoutError("late")) is False
        assert request.state is RequestState.GRANTED
        assert request.error is None
        assert calls == [RequestState.GRANTED]

    def test_cancel_after_grant_is_a_noop(self):
        lm = LockManager()
        holder, waiter = Owner(1), Owner(2)
        request = waiting_request(lm, holder, waiter)
        lm.release_all(holder)
        assert request.state is RequestState.GRANTED
        assert lm.cancel_request(request, LockTimeoutError("late")) is False
        assert request.state is RequestState.GRANTED
        assert lm.holds(waiter, R, LockMode.SHARED)

    @pytest.mark.parametrize("round_", range(20))
    def test_concurrent_cancel_vs_grant_exactly_one_wins(self, round_):
        """Hammer cancel_request against the grant path: whatever
        interleaving the OS picks, the request ends in exactly one
        terminal state, callbacks fire exactly once, and a DENIED
        verdict never leaves a granted lock behind."""
        lm = LockManager()
        holder, waiter = Owner(1), Owner(2)
        request = waiting_request(lm, holder, waiter)
        fired = []
        request.on_resolve(lambda r: fired.append(r.state))
        barrier = threading.Barrier(2)
        cancel_won = []

        def canceller():
            barrier.wait()
            if lm.cancel_request(request, LockTimeoutError("timeout")):
                cancel_won.append(True)

        def granter():
            barrier.wait()
            lm.release_all(holder)

        threads = [threading.Thread(target=canceller),
                   threading.Thread(target=granter)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(fired) == 1, "callbacks must fire exactly once"
        assert request.state in (RequestState.GRANTED, RequestState.DENIED)
        assert fired == [request.state]
        if request.state is RequestState.DENIED:
            assert cancel_won == [True]
            assert isinstance(request.error, LockTimeoutError)
            # a denied waiter must not hold the lock...
            assert not lm.holds(waiter, R, LockMode.SHARED)
        else:
            assert cancel_won == []
            assert lm.holds(waiter, R, LockMode.SHARED)
        # ...and either way the queue is drained
        lm.release_all(waiter)
        assert lm.table_size() == 0
        assert len(lm._waiting) == 0
