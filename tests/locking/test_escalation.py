"""Lock-manager unit tests for SIREAD granularity escalation (PR 6).

``promote_sireads`` swaps a batch of record sentinels for one coarse
(page/table) sentinel; the coarse lock carries a *weight* — itself plus
every fine lock it absorbed — so observability totals and the
release-path return values stay comparable before and after escalation.
"""

from dataclasses import dataclass, field

import pytest

from repro.locking.manager import (
    LockManager,
    page_resource,
    record_resource,
    table_resource,
)
from repro.locking.modes import LockMode

SIREAD, X = LockMode.SIREAD, LockMode.EXCLUSIVE


@dataclass
class Owner:
    id: int
    begin_ts: int = 0
    coarse_sireads: set = field(default_factory=set)


@pytest.fixture
def lm():
    return LockManager()


def hold_records(lm, owner, count):
    fine = [record_resource("t", i) for i in range(count)]
    for resource in fine:
        assert lm.acquire(owner, resource, SIREAD).granted
    return fine


class TestPromote:
    def test_promote_replaces_fine_with_one_coarse(self, lm):
        owner = Owner(1)
        fine = hold_records(lm, owner, 5)
        assert lm.table_size() == 5
        replaced = lm.promote_sireads(owner, fine, page_resource("t", 0))
        assert replaced == 5
        assert lm.table_size() == 1
        assert lm.escalated_lock_count() == 1
        assert lm.stats["escalations"] == 1
        assert lm.stats["escalated_records"] == 5

    def test_promote_nothing_held_is_a_clean_noop(self, lm):
        owner = Owner(1)
        ghost = [record_resource("t", i) for i in range(3)]  # never held
        assert lm.promote_sireads(owner, ghost, page_resource("t", 0)) == 0
        assert lm.table_size() == 0
        assert lm.escalated_lock_count() == 0  # grant undone, weight gone

    def test_writer_probe_sees_coarse_sentinel(self, lm):
        reader, writer = Owner(1), Owner(2)
        fine = hold_records(lm, reader, 4)
        coarse = page_resource("t", 0)
        lm.promote_sireads(reader, fine, coarse)
        conflicts = lm.probe_detection(writer, coarse, X)
        assert [lock.owner.id for lock in conflicts] == [reader.id]


class TestWeightedDrop:
    def test_drop_counts_records_an_escalated_lock_replaced(self, lm):
        """Satellite (c): the lone coarse sentinel left after escalation
        must report the locks it stands for, not 1."""
        owner = Owner(1)
        fine = hold_records(lm, owner, 5)
        lm.promote_sireads(owner, fine, page_resource("t", 0))
        dropped = lm.drop_siread_locks(owner)
        assert dropped == 6  # the sentinel itself + 5 records absorbed
        assert lm.stats["siread_dropped"] == 6
        assert lm.table_size() == 0
        assert lm.siread_lock_count() == 0
        assert lm.escalated_lock_count() == 0

    def test_two_tier_escalation_accumulates_weight(self, lm):
        """page -> table re-escalation folds the page weight into the
        table sentinel via the surplus."""
        owner = Owner(1)
        fine = hold_records(lm, owner, 5)
        page = page_resource("t", 0)
        lm.promote_sireads(owner, fine, page)
        replaced = lm.promote_sireads(owner, [page], table_resource("t"))
        assert replaced == 1  # one page sentinel absorbed...
        dropped = lm.drop_siread_locks(owner)
        assert dropped == 7  # ...but it carried its own 6 grants along
        assert lm.stats["siread_dropped"] == 7
        assert lm.escalated_lock_count() == 0

    def test_unescalated_drop_is_unweighted(self, lm):
        owner = Owner(1)
        hold_records(lm, owner, 3)
        assert lm.drop_siread_locks(owner) == 3
        assert lm.stats["siread_dropped"] == 3
