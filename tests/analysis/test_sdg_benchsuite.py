"""SDG analysis of the paper's benchmark suites — reproduces, as computed
artefacts, Figures 2.8, 2.9, 2.10 and 5.3."""

import pytest

from repro.analysis import build_sdg, smallbank_specs, tpcc_specs, tpccpp_specs
from repro.analysis.sdg import SDG, SdgEdge
from repro.analysis.programs import ProgramSpec, read, write


class TestSmallBank:
    """Figure 2.9 and Section 2.8.4's analysis."""

    @pytest.fixture(scope="class")
    def sdg(self):
        return build_sdg(smallbank_specs())

    def test_pivot_is_writecheck(self, sdg):
        assert sdg.pivots() == ["WC"]

    def test_dangerous_structure_is_bal_wc_ts(self, sdg):
        witnesses = {(w.incoming, w.pivot, w.outgoing) for w in sdg.dangerous_structures()}
        assert ("Bal", "WC", "TS") in witnesses

    def test_vulnerable_edges_match_paper(self, sdg):
        vulnerable = {(e.src, e.dst) for e in sdg.vulnerable_edges()}
        assert vulnerable == {
            ("Bal", "DC"), ("Bal", "TS"), ("Bal", "WC"), ("Bal", "Amg"),
            ("WC", "TS"),
        }

    def test_wc_to_amg_not_vulnerable(self, sdg):
        """The subtle case of Section 2.8.4: Amg's write to Saving is
        always accompanied by a write to Checking, which WC also writes."""
        edge = sdg.edge("WC", "Amg")
        assert edge is not None
        assert "rw" in edge.kinds
        assert not edge.vulnerable

    def test_not_serializable_under_si(self, sdg):
        assert not sdg.is_serializable_under_si()

    @pytest.mark.parametrize(
        "variant", ["materialize_wt", "promote_wt", "materialize_bw", "promote_bw"]
    )
    def test_all_fixes_restore_serializability(self, variant):
        fixed = build_sdg(smallbank_specs(variant))
        assert fixed.pivots() == []
        assert fixed.is_serializable_under_si()

    def test_promote_bw_turns_bal_into_update(self):
        """Figure 2.10: Bal's edges become write-write conflicts."""
        fixed = build_sdg(smallbank_specs("promote_bw"))
        for dst in ("DC", "WC", "Amg"):
            edge = fixed.edge("Bal", dst)
            assert "ww" in edge.kinds, f"Bal->{dst} should have a ww conflict"


class TestTpcc:
    """Figure 2.8: TPC-C is serializable under SI (Fekete et al. 2005)."""

    @pytest.fixture(scope="class")
    def sdg(self):
        return build_sdg(tpcc_specs())

    def test_no_dangerous_structure(self, sdg):
        assert sdg.pivots() == []
        assert sdg.is_serializable_under_si()

    def test_vulnerable_edges_exist_but_never_consecutive(self, sdg):
        assert sdg.vulnerable_edges()  # e.g. SLEV -> NEWO

    def test_slev_newo_vulnerable(self, sdg):
        edge = sdg.edge("SLEV", "NEWO")
        assert edge is not None and edge.vulnerable

    def test_queries_have_no_incoming_vulnerable_edges(self, sdg):
        for query in ("OSTAT", "SLEV", "DLVY1"):
            incoming = [e for e in sdg.vulnerable_edges() if e.dst == query]
            assert incoming == [], f"{query} is read-only, cannot be written into"


class TestTpccpp:
    """Figure 5.3: Credit Check makes TPC-C++ non-serializable at SI."""

    @pytest.fixture(scope="class")
    def sdg(self):
        return build_sdg(tpccpp_specs())

    def test_pivots_are_ccheck_and_newo(self, sdg):
        assert sdg.pivots() == ["CCHECK", "NEWO"]

    def test_simple_cycle_ccheck_newo(self, sdg):
        assert sdg.edge("CCHECK", "NEWO").vulnerable
        assert sdg.edge("NEWO", "CCHECK").vulnerable

    def test_ccheck_self_ww_loop(self, sdg):
        """Two Credit Checks on the same customer write-write conflict."""
        edge = sdg.edge("CCHECK", "CCHECK")
        assert edge is not None and "ww" in edge.kinds

    def test_ccheck_reads_payment_writes(self, sdg):
        edge = sdg.edge("CCHECK", "PAY")
        assert edge is not None and edge.vulnerable

    def test_not_serializable(self, sdg):
        assert not sdg.is_serializable_under_si()


class TestSdgMechanics:
    def test_reaches_reflexive(self):
        sdg = SDG([], [])
        assert sdg.reaches("A", "A")

    def test_to_dot_renders(self):
        sdg = build_sdg(smallbank_specs())
        dot = sdg.to_dot()
        assert "digraph" in dot
        assert '"WC" [shape=diamond' in dot  # pivot rendering
        assert "dashed" in dot

    def test_three_program_chain_dangerous(self):
        """R ~> P ~> Q with an ordinary edge Q -> R closes Definition 1."""
        r = ProgramSpec("R", (read("a", "k"),))
        p = ProgramSpec("P", (write("a", "k"), read("b", "k", "a")))
        q = ProgramSpec("Q", (write("b", "k", "a"), write("c", "k", "a")))
        r2 = ProgramSpec("R", (read("a", "k"), read("c", "k", "a")))
        sdg = build_sdg([r2, p, q])
        assert "P" in sdg.pivots()
