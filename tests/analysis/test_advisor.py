"""Fix-advisor tests: the automated Section 2.8.5 analysis."""

import pytest

from repro.analysis import build_sdg, smallbank_specs, tpcc_specs, tpccpp_specs
from repro.analysis.advisor import suggest_fixes


class TestSmallBank:
    @pytest.fixture(scope="class")
    def candidates(self):
        return suggest_fixes(smallbank_specs())

    def test_candidates_found(self, candidates):
        assert candidates

    def test_some_candidate_restores_serializability(self, candidates):
        assert any(candidate.serializable for candidate in candidates)

    def test_candidate_edges_are_the_paper_options(self, candidates):
        """Section 2.8.5: the choices are the Bal->WC and WC->TS edges."""
        edges = {candidate.edge for candidate in candidates}
        assert edges <= {("Bal", "WC"), ("WC", "TS")}
        assert ("WC", "TS") in edges
        assert ("Bal", "WC") in edges

    def test_wt_fixes_ranked_above_bw_fixes(self, candidates):
        """Fixing the WT edge leaves Bal read-only; fixing the BW edge
        turns the (presumably frequent) query into an update — the
        paper's ranking guidance."""
        best = candidates[0]
        assert best.serializable
        assert best.edge == ("WC", "TS")
        assert best.queries_modified == ()

    def test_bw_fixes_modify_the_query(self, candidates):
        bw = [c for c in candidates if c.edge == ("Bal", "WC") and c.serializable]
        assert bw
        assert all("Bal" in candidate.queries_modified for candidate in bw)

    def test_both_techniques_offered_for_wt(self, candidates):
        techniques = {
            candidate.technique
            for candidate in candidates
            if candidate.edge == ("WC", "TS") and candidate.serializable
        }
        assert techniques == {"promote", "materialize"}

    def test_describe_is_readable(self, candidates):
        text = candidates[0].describe()
        assert "WC->TS" in text and "OK" in text


class TestTpcc:
    def test_serializable_application_needs_no_fixes(self):
        assert suggest_fixes(tpcc_specs()) == []


class TestTpccpp:
    @pytest.fixture(scope="class")
    def candidates(self):
        return suggest_fixes(tpccpp_specs())

    def test_candidates_found(self, candidates):
        assert candidates

    def test_edges_touch_the_two_pivots(self, candidates):
        for candidate in candidates:
            assert "CCHECK" in candidate.edge or "NEWO" in candidate.edge

    def test_predicate_conflicts_have_no_promotion(self, candidates):
        """CCHECK -> NEWO rides on predicate reads of new_order, which
        promotion cannot cover (Section 2.6.2); only materialisation is
        offered for that edge."""
        ccheck_newo = [c for c in candidates if c.edge == ("CCHECK", "NEWO")]
        assert ccheck_newo
        assert {c.technique for c in ccheck_newo} == {"materialize"}

    def test_some_single_edge_fix_may_not_suffice(self, candidates):
        """TPC-C++ has two pivots; the advisor reports residual pivots
        honestly for fixes that only cure one."""
        assert any(not candidate.serializable for candidate in candidates) or all(
            candidate.serializable for candidate in candidates
        )

    def test_fix_application_is_verifiable(self, candidates):
        # Whatever the advisor claims, re-deriving the SDG agrees.
        from repro.analysis.advisor import _rw_witnesses  # smoke: no crash
        for candidate in candidates[:3]:
            assert isinstance(candidate.serializable, bool)
