"""Program-spec and matching machinery tests."""

from repro.analysis.programs import (
    Access,
    ProgramSpec,
    conflicts_under,
    insert,
    matchings,
    predicate_read,
    read,
    write,
)


def test_access_constructors():
    r = read("t", "c", "customer")
    w = write("t", "c", "customer")
    p = predicate_read("t")
    i = insert("t")
    assert r.is_read and not r.is_write
    assert w.is_write and not w.is_read
    assert p.is_read and p.row == "*"
    assert i.is_write and i.row == "*"


def test_domain_defaults_to_table():
    assert read("orders", "o").domain == "orders"


def test_readonly_detection():
    query = ProgramSpec("Q", (read("t", "a"), predicate_read("u")))
    update = ProgramSpec("U", (read("t", "a"), write("t", "a")))
    assert query.readonly
    assert not update.readonly


def test_row_vars_excludes_star():
    spec = ProgramSpec("P", (read("t", "a"), write("t", "b"), insert("u")))
    assert spec.row_vars() == [("a", "t"), ("b", "t")]


def test_with_extra_creates_new_spec():
    base = ProgramSpec("P", (read("t", "a"),))
    extended = base.with_extra(write("t", "a"))
    assert len(base.accesses) == 1
    assert len(extended.accesses) == 2
    assert extended.name == "P"


class TestMatchings:
    def test_empty_matching_always_present(self):
        assert {} in list(matchings([("a", "d")], [("b", "d")]))

    def test_same_domain_matched(self):
        results = list(matchings([("a", "d")], [("b", "d")]))
        assert {"a": "b"} in results

    def test_cross_domain_never_matched(self):
        results = list(matchings([("a", "d1")], [("b", "d2")]))
        assert results == [{}]

    def test_injective(self):
        results = list(matchings([("a", "d"), ("b", "d")], [("x", "d")]))
        # a->x or b->x but never both
        assert {"a": "x", "b": "x"} not in results
        assert {"a": "x"} in results and {"b": "x"} in results

    def test_count_for_two_by_two(self):
        results = list(matchings(
            [("a", "d"), ("b", "d")], [("x", "d"), ("y", "d")]
        ))
        # {} + 4 singles + 2 doubles = 7 partial injective matchings
        assert len(results) == 7


class TestConflictsUnder:
    def test_matched_rows_conflict(self):
        a = read("t", "a")
        b = write("t", "b")
        assert conflicts_under(a, b, {"a": "b"})
        assert not conflicts_under(a, b, {})

    def test_star_conflicts_with_same_table(self):
        scan = predicate_read("t")
        ins = insert("t")
        assert conflicts_under(scan, ins, {})
        assert conflicts_under(scan, write("t", "b"), {})

    def test_different_tables_never_conflict(self):
        assert not conflicts_under(read("t", "a"), write("u", "a"), {"a": "a"})
