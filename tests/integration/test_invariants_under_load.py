"""End-to-end invariants under sustained simulated load.

These runs push real concurrency through the engine and check global
properties afterwards: conservation laws that only hold if isolation
worked, index/base consistency, and the serializability oracle.
"""

import random

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sgt.checker import check_serializable
from repro.sim.ops import Read, ReadForUpdate, Rollback, Write
from repro.sim.scheduler import SimConfig, Simulator
from repro.sim.workload import Mix, Workload

ACCOUNTS = 24
TOTAL = ACCOUNTS * 100


def transfer_workload():
    """Zero-sum transfers with an invariant check baked into the txn."""

    def setup(db):
        db.create_table("bank")
        db.load("bank", ((i, 100) for i in range(ACCOUNTS)))

    def transfer(rng):
        src = rng.randrange(ACCOUNTS)
        dst = (src + rng.randrange(1, ACCOUNTS)) % ACCOUNTS
        amount = rng.randint(1, 20)
        a = yield ReadForUpdate("bank", src)
        if a < amount:
            yield Rollback("insufficient")
        b = yield ReadForUpdate("bank", dst)
        yield Write("bank", src, a - amount)
        yield Write("bank", dst, b + amount)

    def audit(rng):
        total = 0
        for account in range(ACCOUNTS):
            total += yield Read("bank", account)
        return total

    return Workload("bank", setup, Mix([
        ("transfer", 4.0, transfer),
        ("audit", 1.0, audit),
    ]))


@pytest.mark.parametrize("level", ["ssi", "s2pl", "sgt", "si"])
def test_money_conserved(level):
    db = Database(EngineConfig())
    workload = transfer_workload()
    workload.setup(db)
    result = Simulator(db, workload, level, 8,
                       SimConfig(duration=0.4, warmup=0.0, seed=3)).run()
    assert result.commits > 50
    check = db.begin("si")
    total = sum(value for _key, value in check.scan("bank"))
    check.commit()
    # Zero-sum transfers: conservation holds at every level (transfers
    # lock both rows) — this checks atomicity and abort hygiene.
    assert total == TOTAL


def test_serializable_levels_pass_oracle_under_load():
    workload = transfer_workload()
    for level in ("ssi", "s2pl", "sgt"):
        db = Database(EngineConfig(record_history=True))
        workload.setup(db)
        Simulator(db, workload, level, 6,
                  SimConfig(duration=0.15, warmup=0.0, seed=9)).run()
        report = check_serializable(db.history)
        assert report.serializable, (level, report.describe())


def test_indexed_workload_consistency_under_load():
    """Random writes against an indexed table: after the storm, the index
    matches the base table exactly."""

    def setup(db):
        db.create_table("users")
        db.load("users", ((i, {"tier": "free"}) for i in range(30)))
        db.create_index("by_tier", "users", key_func=lambda pk, row: row["tier"])

    def flip(rng):
        pk = rng.randrange(30)
        row = yield ReadForUpdate("users", pk)
        tier = "pro" if row["tier"] == "free" else "free"
        yield Write("users", pk, {"tier": tier})

    db = Database(EngineConfig())
    workload = Workload("tiers", setup, Mix([("flip", 1.0, flip)]))
    workload.setup(db)
    simulator = Simulator(
        db, workload, "ssi", 6, SimConfig(duration=0.3, warmup=0.0, seed=1)
    )
    outcome = simulator.run()
    assert outcome.commits > 50

    check = db.begin("si")
    base = dict(check.scan("users"))
    indexed = check.index_scan("by_tier")
    check.commit()
    assert sorted(pk for _tier, pk in indexed) == sorted(base)
    for tier, pk in indexed:
        assert base[pk]["tier"] == tier


def test_mixed_isolation_traffic_updates_stay_consistent():
    """Section 3.8 operationally: SI audits among SSI transfers never
    corrupt the updates' consistency."""
    db = Database(EngineConfig())
    workload = transfer_workload()
    workload.setup(db)
    Simulator(
        db, workload, "ssi", 8,
        SimConfig(duration=0.3, warmup=0.0, seed=4),
        isolation_overrides={"audit": "si"},
    ).run()
    check = db.begin("si")
    assert sum(v for _k, v in check.scan("bank")) == TOTAL
    check.commit()
