"""Exhaustive interleaving validation — the paper's Section 4.7 harness.

Two transaction sets are exercised through *every* interleaving:

* the Section 4.7 test set (T1: r(x); T2: r(y) w(x); T3: w(y)) — two
  consecutive rw edges but no closing cycle, so every execution is
  serializable; SI commits all interleavings, Serializable SI
  conservatively aborts the concurrent ones (exactly the paper's
  observation);
* the Example 3 read-only-anomaly set (Tin: r(x) r(z); Tpivot: r(y) w(x);
  Tout: w(y) w(z)) — genuinely non-serializable interleavings exist,
  which SI lets through and SSI must intercept.
"""

import pytest

from repro.engine.config import EngineConfig
from repro.sgt.checker import check_serializable
from repro.sim.interleave import all_interleavings, run_interleaving
from repro.sim.ops import Read, Write


def three_txn_setup(db):
    db.create_table("t")
    db.load("t", [("x", 0), ("y", 0), ("z", 0)])


# --- Section 4.7 test set ------------------------------------------------


def s47_t1():
    yield Read("t", "x")


def s47_t2():
    yield Read("t", "y")
    yield Write("t", "x", 2)


def s47_t3():
    yield Write("t", "y", 3)


S47_PROGRAMS = (s47_t1, s47_t2, s47_t3)
S47_STEPS = [2, 3, 2]  # yields + commit


# --- Example 3 (read-only anomaly) set -----------------------------------


def ex3_tin():
    yield Read("t", "x")
    yield Read("t", "z")


def ex3_tpivot():
    yield Read("t", "y")
    yield Write("t", "x", 5)


def ex3_tout():
    yield Write("t", "y", 10)
    yield Write("t", "z", 10)


EX3_PROGRAMS = (ex3_tin, ex3_tpivot, ex3_tout)
EX3_STEPS = [3, 3, 3]


@pytest.mark.parametrize("precise", [True, False], ids=["enhanced", "basic"])
def test_section_4_7_set_under_ssi(precise):
    orders = list(all_interleavings(S47_STEPS))
    assert len(orders) == 210
    unsafe_seen = 0
    for order in orders:
        outcome = run_interleaving(
            three_txn_setup,
            list(S47_PROGRAMS),
            order,
            isolation="ssi",
            engine_config=EngineConfig(record_history=True, precise_conflicts=precise),
        )
        report = check_serializable(outcome.db.history)
        assert report.serializable, (
            f"order {order} produced a non-serializable SSI execution:\n"
            + report.describe()
        )
        if "unsafe" in outcome.statuses.values():
            unsafe_seen += 1
    # The concurrent interleavings trip the conservative detector.
    assert unsafe_seen > 0


def test_section_4_7_set_si_commits_everything():
    """Matches the paper: 'all interleavings committed without error at
    SI' — the set has no cycle, only the dangerous two-edge prefix."""
    for order in all_interleavings(S47_STEPS):
        outcome = run_interleaving(
            three_txn_setup,
            list(S47_PROGRAMS),
            order,
            isolation="si",
            engine_config=EngineConfig(record_history=True),
        )
        assert outcome.all_committed
        assert check_serializable(outcome.db.history).serializable


def test_example_3_set_si_exhibits_anomalies():
    non_serializable = 0
    for order in all_interleavings(EX3_STEPS):
        outcome = run_interleaving(
            three_txn_setup,
            list(EX3_PROGRAMS),
            order,
            isolation="si",
            engine_config=EngineConfig(record_history=True),
        )
        assert "unsafe" not in outcome.statuses.values()
        if not check_serializable(outcome.db.history).serializable:
            non_serializable += 1
    assert non_serializable > 0


def test_example_3_set_ssi_always_serializable():
    unsafe_seen = 0
    for order in all_interleavings(EX3_STEPS):
        outcome = run_interleaving(
            three_txn_setup,
            list(EX3_PROGRAMS),
            order,
            isolation="ssi",
            engine_config=EngineConfig(record_history=True),
        )
        report = check_serializable(outcome.db.history)
        assert report.serializable, (
            f"order {order}: non-serializable SSI execution\n" + report.describe()
        )
        if "unsafe" in outcome.statuses.values():
            unsafe_seen += 1
    assert unsafe_seen > 0


def test_s2pl_every_interleaving_serializable():
    for order in all_interleavings(S47_STEPS):
        outcome = run_interleaving(
            three_txn_setup,
            list(S47_PROGRAMS),
            order,
            isolation="s2pl",
            engine_config=EngineConfig(record_history=True),
        )
        assert check_serializable(outcome.db.history).serializable


def test_sgt_aborts_at_most_as_often_as_ssi():
    """SGT tests true cycles only; on the cycle-free Section 4.7 set it
    must commit every interleaving, while SSI aborts some."""
    ssi_aborts = sgt_aborts = 0
    for order in all_interleavings(S47_STEPS):
        for isolation in ("ssi", "sgt"):
            outcome = run_interleaving(
                three_txn_setup,
                list(S47_PROGRAMS),
                order,
                isolation=isolation,
                engine_config=EngineConfig(record_history=True),
            )
            assert check_serializable(outcome.db.history).serializable
            aborted = sum(
                1 for status in outcome.statuses.values() if status != "committed"
            )
            if isolation == "ssi":
                ssi_aborts += aborted
            else:
                sgt_aborts += aborted
    assert sgt_aborts == 0, "no real cycle exists in this set"
    assert ssi_aborts > 0, "the conservative detector fires on this set"


# --- Example 2 write-skew invariant --------------------------------------


def write_skew_setup(db):
    db.create_table("acct")
    db.load("acct", [("x", 50), ("y", 50)])


def withdraw_x():
    x = yield Read("acct", "x")
    y = yield Read("acct", "y")
    if x + y > 60:
        yield Write("acct", "x", x - 60)


def withdraw_y():
    x = yield Read("acct", "x")
    y = yield Read("acct", "y")
    if x + y > 60:
        yield Write("acct", "y", y - 60)


def _invariant_violations(isolation):
    violations = 0
    for order in all_interleavings([4, 4]):
        outcome = run_interleaving(
            write_skew_setup, [withdraw_x, withdraw_y], order, isolation=isolation
        )
        check = outcome.db.begin("si")
        total = check.read("acct", "x") + check.read("acct", "y")
        check.commit()
        if total <= 0:
            violations += 1
    return violations


def test_write_skew_invariant_exhaustive_ssi():
    """x + y > 0 must hold after every SSI interleaving (Example 2)."""
    assert _invariant_violations("ssi") == 0


def test_write_skew_invariant_violated_under_si():
    assert _invariant_violations("si") > 0
