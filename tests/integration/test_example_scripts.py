"""The examples are part of the public contract: each must run cleanly
and demonstrate what its docstring promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=120):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart_shows_the_contrast():
    out = run_example("quickstart.py")
    assert "constraint violated" in out          # SI breaks the invariant
    assert "aborted (unsafe)" in out             # SSI prevents it


def test_doctors_example_invariant_outcomes():
    out = run_example("doctors_on_call.py")
    assert "VIOLATED" in out                     # under snapshot isolation
    assert out.count("OK") >= 1                  # under Serializable SI


def test_credit_check_example():
    out = run_example("credit_check.py")
    assert "credit check committed BC" in out    # the SI anomaly
    assert "unsafe" in out                       # SSI intercepts


def test_durability_example():
    out = run_example("durability.py")
    assert "CRASH!" in out
    assert "recovered state" in out


def test_history_oracle_example():
    out = run_example("history_oracle.py")
    assert "NON-SERIALIZABLE" in out
    assert "digraph MVSG" in out


def test_reproduce_figure_listing():
    out = run_example("reproduce_figure.py", "--list", timeout=60)
    assert "fig6.1" in out and "fig6.18" in out


@pytest.mark.slow
def test_smallbank_analysis_example():
    out = run_example("smallbank_analysis.py", timeout=240)
    assert "pivots: ['WC']" in out
    assert "promote WC->TS" in out
    assert "throughput" in out
