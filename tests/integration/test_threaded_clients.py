"""Real-thread integration tests.

The public Transaction API blocks the calling thread on lock waits; these
tests drive genuinely concurrent clients (actual threads, GIL
notwithstanding — lock waits and wakeups are real) and check liveness and
serializability end to end.
"""

import random
import threading

import pytest

from repro import Database, EngineConfig
from repro.engine.config import DeadlockMode
from repro.errors import ConstraintError, TransactionAbortedError
from repro.sgt.checker import check_serializable

from tests.conftest import fill


def run_clients(db, client_fn, n_threads=4, iterations=25):
    errors = []
    counters = {"commits": 0, "aborts": 0}
    lock = threading.Lock()

    def loop(index):
        rng = random.Random(index)
        for _round in range(iterations):
            try:
                client_fn(rng)
                with lock:
                    counters["commits"] += 1
            except (TransactionAbortedError, ConstraintError):
                with lock:
                    counters["aborts"] += 1
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)
                raise

    threads = [threading.Thread(target=loop, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "client thread hung"
    assert not errors
    return counters


@pytest.mark.parametrize("level", ["si", "ssi", "s2pl", "sgt"])
def test_concurrent_counter_increments_are_exact(level):
    db = Database(EngineConfig())
    fill(db, "c", {0: 0})

    def client(rng):
        txn = db.begin(level)
        try:
            value = txn.read_for_update("c", 0)
            txn.write("c", 0, value + 1)
            txn.commit()
        except TransactionAbortedError:
            raise

    counters = run_clients(db, client, n_threads=4, iterations=20)
    final = db.begin("si")
    assert final.read("c", 0) == counters["commits"]
    final.commit()
    assert counters["commits"] > 0


def test_threaded_smallbank_ssi_serializable():
    from repro.sim.direct import run_program
    from repro.workloads.smallbank import make_smallbank

    db = Database(EngineConfig(record_history=True))
    workload = make_smallbank(customers=8)
    workload.setup(db)

    def client(rng):
        _name, program = workload.next_transaction(rng)
        run_program(db, program, isolation="ssi")

    counters = run_clients(db, client, n_threads=4, iterations=20)
    assert counters["commits"] > 0
    report = check_serializable(db.history)
    assert report.serializable, report.describe()


def test_threaded_write_skew_invariant_held_under_ssi():
    db = Database(EngineConfig())
    fill(db, "acct", {"x": 60, "y": 60})

    def client(rng):
        account = "x" if rng.random() < 0.5 else "y"
        txn = db.begin("ssi")
        try:
            total = txn.read("acct", "x") + txn.read("acct", "y")
            if total - 50 >= 0:
                txn.write("acct", account, txn.read("acct", account) - 50)
                txn.commit()
            else:
                txn.abort()
                raise ConstraintError("insufficient funds")
        except TransactionAbortedError:
            raise

    run_clients(db, client, n_threads=4, iterations=15)
    final = db.begin("si")
    assert final.read("acct", "x") + final.read("acct", "y") >= 0
    final.commit()


def test_threaded_deadlocks_resolved_by_periodic_sweep():
    db = Database(EngineConfig(deadlock_mode=DeadlockMode.PERIODIC))
    fill(db, "t", {"a": 0, "b": 0})

    def client(rng):
        first, second = ("a", "b") if rng.random() < 0.5 else ("b", "a")
        txn = db.begin("s2pl")
        try:
            txn.write("t", first, 1)
            txn.write("t", second, 1)
            txn.commit()
        except TransactionAbortedError:
            raise

    counters = run_clients(db, client, n_threads=4, iterations=10)
    # Liveness is the point: every thread finished; some work committed.
    assert counters["commits"] > 0
