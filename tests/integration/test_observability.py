"""End-to-end observability: trace a real SSI run, explain its aborts.

The acceptance scenario for the telemetry layer: a contended SmallBank
run under Serializable SI produces dangerous-structure aborts, and the
event trace alone — no live transaction records — suffices to
reconstruct the pivot triple behind at least one of them.
"""

import json

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import TransactionStateError
from repro.obs.trace import EventType, JsonlFileSink, RingBufferSink
from repro.sim.scheduler import SimConfig, Simulator
from repro.workloads.smallbank import make_smallbank


def run_contended_smallbank(db, mpl=8, duration=0.5):
    workload = make_smallbank(customers=4)
    workload.setup(db)
    sim = Simulator(db, workload, "ssi", mpl,
                    SimConfig(duration=duration, warmup=0.0))
    return sim.run()


def unsafe_abort_ids(trace):
    return [
        event.txn_id
        for event in trace.events(etype=EventType.ABORT)
        if event.data.get("reason") == "unsafe"
    ]


class TestExplainAbortEndToEnd:
    def test_pivot_reconstructed_from_a_real_run(self):
        db = Database(EngineConfig())
        trace = db.enable_tracing(RingBufferSink(capacity=200_000))
        result = run_contended_smallbank(db)
        assert result.aborts["unsafe"] > 0, "contended run must hit unsafe aborts"

        doomed = unsafe_abort_ids(trace)
        assert doomed, "every unsafe abort must appear in the trace"
        explained = 0
        for txn_id in doomed:
            explanation = db.explain_abort(txn_id)
            assert explanation.found
            assert explanation.reason == "unsafe"
            if explanation.pivot is None:
                continue
            triple = explanation.pivot
            # The dangerous structure is complete: the pivot is known and
            # both the incoming and outgoing rw-edge parties are recorded.
            if triple.pivot is not None and triple.t_in is not None \
                    and triple.t_out is not None:
                explained += 1
                text = explanation.render()
                assert "--rw-->" in text and "reason=unsafe" in text
        assert explained > 0, "no unsafe abort could be fully explained"

    def test_trace_events_cover_lifecycle(self):
        db = Database(EngineConfig())
        trace = db.enable_tracing(RingBufferSink(capacity=200_000))
        run_contended_smallbank(db, duration=0.2)
        seen = {event.type for event in trace.events()}
        assert {EventType.BEGIN, EventType.SNAPSHOT, EventType.COMMIT,
                EventType.RW_CONFLICT, EventType.ABORT} <= seen

    def test_explain_requires_tracing(self):
        db = Database(EngineConfig())
        with pytest.raises(TransactionStateError):
            db.explain_abort(1)


class TestJsonlTrajectory:
    def test_full_run_trajectory_is_strict_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        db = Database(EngineConfig())
        sink = JsonlFileSink(path, flush_every=64)
        db.enable_tracing(sink, RingBufferSink(capacity=10_000))
        run_contended_smallbank(db, duration=0.2)
        db.disable_tracing()  # closes (and flushes) the file sink

        def reject(value):
            raise ValueError(f"non-standard JSON constant: {value!r}")

        lines = path.read_text().splitlines()
        assert len(lines) > 100
        for line in lines:
            event = json.loads(line, parse_constant=reject)
            assert event["type"] in EventType.ALL


class TestDisabledTracingStaysQuiet:
    def test_simulation_without_tracing_allocates_no_trace(self):
        db = Database(EngineConfig())
        run_contended_smallbank(db, duration=0.1)
        assert db.trace is None
        with pytest.raises(TransactionStateError):
            db.explain_abort(1)
