"""Crash recovery across group-flushed commit batches (PR 9).

Group commit changes the WAL's durability granularity: one ``flush()``
covers every member of a batch.  The contract these tests pin down:

* a flushed group is durable as a unit — recovery replays every member;
* a crash before the group flush loses the *whole* group (atomic, not
  torn: no durable CommitRecord may be missing any of its WriteRecords);
* crashes at arbitrary flush boundaries recover a prefix-consistent
  log — exactly the groups whose flush completed.
"""

import threading

import pytest

from repro import Database, EngineConfig
from repro.errors import TableError
from repro.wal.log import WriteAheadLog
from repro.wal.records import CommitRecord, WriteRecord
from repro.wal.recovery import recover_database


def ensure_table(db, name):
    """Replay materialises tables on demand, so the table exists iff any
    of its writes were durable; recreate the schema only when none were."""
    try:
        db.create_table(name)
    except TableError:
        pass


def group_config(**overrides):
    defaults = dict(
        group_commit=True,
        group_commit_max=8,
        group_commit_wait_us=20000,
        wal_flush_on_commit=True,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def run_batched_commits(db, count, keys_per_txn=2, threads=4):
    """Drive ``count`` single-writer transactions from ``threads``
    concurrent workers so real multi-member batches form."""
    barrier = threading.Barrier(threads)
    failures = []

    def worker(index):
        barrier.wait()
        for i in range(index, count, threads):
            try:
                txn = db.begin("ssi")
                for k in range(keys_per_txn):
                    txn.write("t", (i, k), i * 100 + k)
                txn.commit()
            except BaseException as error:  # noqa: BLE001
                failures.append(error)
                return

    workers = [
        threading.Thread(target=worker, args=(i,)) for i in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert not failures, failures


def assert_no_torn_groups(wal):
    """Every durable CommitRecord must have all of its WriteRecords
    durable too — the group flush is all-or-nothing."""
    durable = list(wal.records(durable_only=True))
    durable_writes = {}
    for record in durable:
        if isinstance(record, WriteRecord):
            durable_writes.setdefault(record.txn_id, set()).add(
                (record.table, record.key)
            )
    all_writes = {}
    for record in wal.records(durable_only=False):
        if isinstance(record, WriteRecord):
            all_writes.setdefault(record.txn_id, set()).add(
                (record.table, record.key)
            )
    for record in durable:
        if isinstance(record, CommitRecord):
            assert durable_writes.get(record.txn_id, set()) == all_writes.get(
                record.txn_id, set()
            ), f"torn group: commit {record.txn_id} durable without its writes"


class DyingWAL(WriteAheadLog):
    """Power-loss model: after ``survive_flushes`` flushes, flush becomes
    a silent no-op (the machine died before fsync returned), so later
    "durable" groups never reached disk."""

    def __init__(self, survive_flushes):
        super().__init__()
        self.survive_flushes = survive_flushes

    def flush(self):
        if self.stats["flushes"] >= self.survive_flushes:
            return self.flushed_lsn
        return super().flush()


class TestGroupFlushDurability:
    def test_flushed_group_recovers_every_member(self):
        wal = WriteAheadLog()
        db = Database(group_config(), wal=wal)
        db.create_table("t")
        run_batched_commits(db, count=24)
        batches = db.metrics.snapshot()["counters"]["group_commit"]["batches"]
        assert batches <= wal.stats["flushes"] + 1
        wal.crash()  # everything flushed: nothing to lose
        recovered = recover_database(wal)
        check = recovered.begin("si")
        for i in range(24):
            for k in range(2):
                assert check.read("t", (i, k)) == i * 100 + k
        check.commit()

    def test_group_flush_amortizes_flushes(self):
        wal = WriteAheadLog()
        db = Database(group_config(), wal=wal)
        db.create_table("t")
        run_batched_commits(db, count=32)
        commits = db.metrics.snapshot()["counters"]["engine"]["commits"]
        assert commits == 32
        # One flush per *batch*, not per commit; concurrency guarantees
        # at least one multi-member batch over 32 commits and 4 threads.
        assert wal.stats["flushes"] < commits

    def test_unflushed_group_lost_whole(self):
        """A crash between the batch's appends and its flush loses every
        member of that group — none of them ack'd durability."""
        wal = WriteAheadLog()
        config = group_config(wal_flush_on_commit=False)
        db = Database(config, wal=wal)
        db.create_table("t")
        run_batched_commits(db, count=8)
        wal.crash()
        assert_no_torn_groups(wal)
        recovered = recover_database(wal)
        ensure_table(recovered, "t")
        check = recovered.begin("si")
        for i in range(8):
            assert check.get("t", (i, 0)) is None
        check.commit()


class TestCrashPoints:
    @pytest.mark.parametrize("survive_flushes", [0, 1, 2, 3])
    def test_prefix_consistent_recovery(self, survive_flushes):
        """Power loss after N completed group flushes recovers exactly
        the groups those N flushes covered: prefix-consistent, no torn
        groups, values intact."""
        wal = DyingWAL(survive_flushes)
        db = Database(group_config(), wal=wal)
        db.create_table("t")
        run_batched_commits(db, count=16)
        wal.crash()
        assert wal.stats["flushes"] == min(
            survive_flushes, wal.stats["flushes"]
        )
        assert_no_torn_groups(wal)
        durable_commits = {
            record.txn_id
            for record in wal.records(durable_only=True)
            if isinstance(record, CommitRecord)
        }
        recovered = recover_database(wal)
        ensure_table(recovered, "t")
        check = recovered.begin("si")
        recovered_keys = {key for key, _value in check.scan("t")}
        check.commit()
        # Exactly the durable groups' writes came back.
        expected = set()
        for record in wal.records(durable_only=True):
            if isinstance(record, WriteRecord) and record.txn_id in durable_commits:
                expected.add(record.key)
        assert recovered_keys == expected

    def test_crash_between_enqueue_and_flush_is_atomic(self):
        """The sharpest crash point: the leader appended the batch but
        died inside flush().  No member may be half-durable."""
        wal = DyingWAL(survive_flushes=1)
        db = Database(group_config(), wal=wal)
        db.create_table("t")
        run_batched_commits(db, count=12)
        wal.crash()
        assert_no_torn_groups(wal)
        recovered = recover_database(wal)
        ensure_table(recovered, "t")
        check = recovered.begin("si")
        # Every recovered transaction is complete: both of its keys.
        seen = {}
        for (i, k), value in check.scan("t"):
            seen.setdefault(i, set()).add(k)
            assert value == i * 100 + k
        check.commit()
        for i, ks in seen.items():
            assert ks == {0, 1}, f"txn {i} recovered partially: {ks}"
