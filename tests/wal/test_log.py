"""Write-ahead log unit tests."""

import pytest

from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CommitRecord,
    WriteRecord,
)


def test_lsns_monotonic():
    log = WriteAheadLog()
    records = [log.log_begin(1), log.log_write(1, "t", "k", 1), log.log_commit(1, 5)]
    assert [r.lsn for r in records] == [1, 2, 3]
    assert log.last_lsn == 3


def test_durable_prefix_only_after_flush():
    log = WriteAheadLog()
    log.log_write(1, "t", "k", 1)
    assert list(log.records()) == []  # nothing durable yet
    log.flush()
    assert len(list(log.records())) == 1
    log.log_write(2, "t", "k", 2)
    assert len(list(log.records())) == 1
    assert len(list(log.records(durable_only=False))) == 2


def test_crash_discards_unflushed_suffix():
    log = WriteAheadLog()
    log.log_write(1, "t", "a", 1)
    log.flush()
    log.log_write(2, "t", "b", 2)
    log.log_commit(2, 9)
    lost = log.crash()
    assert lost == 2
    assert len(log) == 1
    # LSNs continue from the watermark.
    record = log.log_write(3, "t", "c", 3)
    assert record.lsn == 2


def test_group_commit_one_flush_covers_many():
    log = WriteAheadLog()
    for txn_id in range(5):
        log.log_commit(txn_id, txn_id + 1)
    log.flush()
    assert log.stats["flushes"] == 1
    assert log.committed_txn_ids() == list(range(5))


def test_record_types():
    log = WriteAheadLog()
    log.log_begin(1)
    log.log_write(1, "t", "k", "v", tombstone=False, kind="insert")
    log.log_abort(1)
    log.log_checkpoint()
    log.flush()
    kinds = [type(record) for record in log.records()]
    assert kinds == [BeginRecord, WriteRecord, AbortRecord, CheckpointRecord]
    write = list(log.records())[1]
    assert write.kind == "insert" and not write.tombstone


def test_file_persistence_roundtrip(tmp_path):
    path = str(tmp_path / "wal.bin")
    log = WriteAheadLog(path=path)
    log.log_write(1, "t", ("composite", 3), {"balance": 10.5})
    log.log_commit(1, 7)
    log.flush()
    log.log_write(2, "t", "lost", 0)  # never flushed

    reloaded = WriteAheadLog.load(path)
    records = list(reloaded.records())
    assert len(records) == 2
    assert records[0].key == ("composite", 3)
    assert reloaded.committed_txn_ids() == [1]


def test_load_missing_file_gives_empty_log(tmp_path):
    log = WriteAheadLog.load(str(tmp_path / "absent.bin"))
    assert len(log) == 0
    assert log.last_lsn == 0


def test_truncate_before():
    log = WriteAheadLog()
    for i in range(5):
        log.log_write(1, "t", i, i)
    log.flush()
    removed = log.truncate_before(lsn=3)
    assert removed == 2
    assert [r.lsn for r in log.records()] == [3, 4, 5]
