"""Redo recovery tests: the crash-consistency contract."""

import pytest

from repro import Database, EngineConfig
from repro.wal.log import WriteAheadLog
from repro.wal.recovery import recover_database, replay

from tests.conftest import fill


def make_db(flush_on_commit=True):
    wal = WriteAheadLog()
    db = Database(EngineConfig(wal_flush_on_commit=flush_on_commit), wal=wal)
    db.create_table("t")
    return db, wal


class TestCommitDurability:
    def test_committed_transactions_survive_crash(self):
        db, wal = make_db()
        txn = db.begin("ssi")
        txn.write("t", "a", 1)
        txn.insert("t", "b", 2)
        txn.commit()
        wal.crash()  # commit already flushed
        recovered = recover_database(wal)
        check = recovered.begin("si")
        assert check.read("t", "a") == 1
        assert check.read("t", "b") == 2
        check.commit()

    def test_unflushed_commit_lost_on_crash(self):
        db, wal = make_db(flush_on_commit=False)
        txn = db.begin("ssi")
        txn.write("t", "a", 1)
        txn.commit()  # logged but not flushed
        wal.crash()
        recovered = recover_database(wal)
        recovered.create_table("t")  # schema survives outside the log
        check = recovered.begin("si")
        assert check.get("t", "a") is None
        check.commit()

    def test_aborted_transactions_never_recovered(self):
        db, wal = make_db()
        committed = db.begin("ssi")
        committed.write("t", "keep", 1)
        committed.commit()
        aborted = db.begin("ssi")
        aborted.write("t", "discard", 2)
        aborted.abort()
        wal.flush()
        recovered = recover_database(wal)
        check = recovered.begin("si")
        assert check.read("t", "keep") == 1
        assert check.get("t", "discard") is None
        check.commit()

    def test_uncommitted_in_flight_lost(self):
        db, wal = make_db()
        txn = db.begin("ssi")
        txn.write("t", "pending", 1)  # buffered; nothing logged yet
        wal.flush()
        recovered = recover_database(wal)
        recovered.create_table("t")  # schema survives outside the log
        check = recovered.begin("si")
        assert check.get("t", "pending") is None
        check.commit()


class TestVersionHistoryPreserved:
    def test_version_order_and_timestamps_survive(self):
        db, wal = make_db()
        for value in (1, 2, 3):
            txn = db.begin("ssi")
            txn.write("t", "k", value)
            txn.commit()
        recovered = recover_database(wal)
        chain = recovered.table("t").chain("k")
        assert [v.value for v in chain] == [3, 2, 1]
        original = db.table("t").chain("k")
        assert [v.commit_ts for v in chain] == [v.commit_ts for v in original]

    def test_deletes_recover_as_tombstones(self):
        db, wal = make_db()
        txn = db.begin("ssi")
        txn.insert("t", "gone", 1)
        txn.commit()
        txn = db.begin("ssi")
        txn.delete("t", "gone")
        txn.commit()
        recovered = recover_database(wal)
        check = recovered.begin("si")
        assert check.get("t", "gone") is None
        check.commit()
        assert recovered.table("t").chain("gone").latest().is_tombstone

    def test_clock_advances_past_recovered_history(self):
        db, wal = make_db()
        txn = db.begin("ssi")
        txn.write("t", "k", 1)
        txn.commit()
        recovered = recover_database(wal)
        new_txn = recovered.begin("ssi")
        new_txn.write("t", "k", 2)
        new_txn.commit()
        assert (
            recovered.table("t").chain("k").latest().commit_ts
            > db.table("t").chain("k").latest().commit_ts
        )


class TestReplayWithBase:
    def test_checkpoint_skips_prefix(self):
        db, wal = make_db()
        txn = db.begin("ssi")
        txn.write("t", "pre", 1)
        txn.commit()
        wal.log_checkpoint()
        wal.flush()
        txn = db.begin("ssi")
        txn.write("t", "post", 2)
        txn.commit()

        # Base database holds the checkpointed state.
        base = Database(EngineConfig())
        base.create_table("t")
        base.load("t", [("pre", 1)])
        recovered = replay(wal, base=base)
        check = recovered.begin("si")
        assert check.read("t", "pre") == 1
        assert check.read("t", "post") == 2
        check.commit()

    def test_tables_created_on_demand(self):
        wal = WriteAheadLog()
        wal.log_write(1, "brand_new", "k", "v")
        wal.log_commit(1, 3)
        wal.flush()
        recovered = recover_database(wal)
        check = recovered.begin("si")
        assert check.read("brand_new", "k") == "v"
        check.commit()


class TestEndToEnd:
    def test_workload_survives_crash_recover_cycle(self):
        """Run SmallBank-ish traffic, crash, recover, compare state."""
        import random

        from repro.sim.direct import run_program
        from repro.workloads.smallbank import make_smallbank
        from repro.errors import ConstraintError, TransactionAbortedError

        wal = WriteAheadLog()
        db = Database(EngineConfig(), wal=wal)
        workload = make_smallbank(customers=10)
        workload.setup(db)
        rng = random.Random(5)
        for _round in range(40):
            _name, program = workload.next_transaction(rng)
            try:
                run_program(db, program, isolation="ssi")
            except (ConstraintError, TransactionAbortedError):
                pass
        wal.crash()

        # Recovery starts from the loaded snapshot (bulk loads are not
        # logged) and replays the committed traffic.
        base = Database(EngineConfig())
        workload.setup(base)
        recovered = replay(wal, base=base)
        for table in ("saving", "checking"):
            for cid in range(10):
                original = db.table(table).chain(cid).latest().value
                replayed = recovered.table(table).chain(cid).latest().value
                assert original == replayed, (table, cid)
