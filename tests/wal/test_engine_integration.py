"""Engine<->WAL integration details."""

from repro import Database, EngineConfig
from repro.wal.log import WriteAheadLog
from repro.wal.records import AbortRecord, CommitRecord, WriteRecord

from tests.conftest import fill


def make_db(**config):
    wal = WriteAheadLog()
    db = Database(EngineConfig(**config), wal=wal)
    fill(db, "t", {1: "a"})
    return db, wal


def test_readonly_commit_logs_nothing():
    db, wal = make_db()
    txn = db.begin("ssi")
    txn.read("t", 1)
    txn.commit()
    assert len(wal) == 0
    assert wal.stats["flushes"] == 0


def test_update_commit_logs_writes_then_commit():
    db, wal = make_db()
    txn = db.begin("ssi")
    txn.write("t", 1, "b")
    txn.insert("t", 2, "c")
    txn.commit()
    records = list(wal.records(durable_only=False))
    kinds = [type(r) for r in records]
    assert kinds == [WriteRecord, WriteRecord, CommitRecord]
    assert {r.kind for r in records[:2]} == {"write", "insert"}
    assert records[-1].commit_ts == txn.commit_ts
    assert wal.flushed_lsn == wal.last_lsn  # flush-on-commit default


def test_abort_with_writes_logged():
    db, wal = make_db()
    txn = db.begin("ssi")
    txn.write("t", 1, "b")
    txn.abort()
    records = list(wal.records(durable_only=False))
    assert [type(r) for r in records] == [AbortRecord]


def test_abort_without_writes_logs_nothing():
    db, wal = make_db()
    txn = db.begin("ssi")
    txn.read("t", 1)
    txn.abort()
    assert len(wal) == 0


def test_delete_logged_as_tombstone():
    db, wal = make_db()
    txn = db.begin("ssi")
    txn.delete("t", 1)
    txn.commit()
    write = next(r for r in wal.records(durable_only=False)
                 if isinstance(r, WriteRecord))
    assert write.tombstone and write.kind == "delete"


def test_no_flush_on_commit_config():
    db, wal = make_db(wal_flush_on_commit=False)
    txn = db.begin("ssi")
    txn.write("t", 1, "b")
    txn.commit()
    assert wal.stats["flushes"] == 0
    assert wal.flushed_lsn == 0


def test_unsafe_abort_leaves_no_committed_trace():
    from repro.errors import TransactionAbortedError

    db, wal = make_db()
    fill(db, "acct", {"x": 50, "y": 50})
    t1, t2 = db.begin("ssi"), db.begin("ssi")
    outcomes = []
    # interleaved write skew: reads and writes first, commits last
    for txn, key in ((t1, "x"), (t2, "y")):
        try:
            total = txn.read("acct", "x") + txn.read("acct", "y")
            txn.write("acct", key, total - 150)
        except TransactionAbortedError:
            outcomes.append("abort")
    for txn in (t1, t2):
        if not txn.is_active:
            continue
        try:
            txn.commit()
            outcomes.append("commit")
        except TransactionAbortedError:
            outcomes.append("abort")
    committed = wal.committed_txn_ids()
    assert outcomes.count("commit") <= 1
    # The log records exactly the committed writers; the aborted skew
    # partner and the unlogged bulk loads leave no commit records.
    assert len(committed) == outcomes.count("commit")

