"""Checkpoint/restore tests."""

import pytest

from repro import Database, EngineConfig
from repro.wal import (
    WriteAheadLog,
    recover_from_checkpoint,
    restore_checkpoint,
    take_checkpoint,
)


def traffic(db, keys, offset=0):
    for index, key in enumerate(keys):
        txn = db.begin("ssi")
        txn.write("t", key, offset + index)
        txn.commit()


@pytest.fixture
def db():
    wal = WriteAheadLog()
    database = Database(EngineConfig(), wal=wal)
    database.create_table("t")
    traffic(database, ["a", "b", "c"])
    return database


def test_checkpoint_restore_roundtrip(db):
    image = take_checkpoint(db)
    restored = restore_checkpoint(image)
    check = restored.begin("si")
    assert dict(check.scan("t")) == {"a": 0, "b": 1, "c": 2}
    check.commit()


def test_checkpoint_preserves_commit_timestamps(db):
    image = take_checkpoint(db)
    restored = restore_checkpoint(image)
    for key in ("a", "b", "c"):
        assert (
            restored.table("t").chain(key).latest().commit_ts
            == db.table("t").chain(key).latest().commit_ts
        )


def test_recovery_replays_suffix_only(db):
    image = take_checkpoint(db)
    traffic(db, ["d", "a"], offset=10)  # post-checkpoint: d=10, a=11
    db.wal.flush()
    recovered = recover_from_checkpoint(image, db.wal)
    check = recovered.begin("si")
    assert dict(check.scan("t")) == {"a": 11, "b": 1, "c": 2, "d": 10}
    check.commit()


def test_log_truncation_after_checkpoint(db):
    image = take_checkpoint(db)
    db.wal.truncate_before(image["checkpoint_lsn"])
    traffic(db, ["z"], offset=99)
    db.wal.flush()
    recovered = recover_from_checkpoint(image, db.wal)
    check = recovered.begin("si")
    assert check.read("t", "z") == 99
    assert check.read("t", "a") == 0  # from the checkpoint image
    check.commit()


def test_checkpoint_to_file(tmp_path, db):
    path = str(tmp_path / "ckpt.bin")
    take_checkpoint(db, path=path)
    traffic(db, ["post"], offset=7)
    db.wal.flush()
    recovered = recover_from_checkpoint(path, db.wal)
    check = recovered.begin("si")
    assert check.read("t", "post") == 7
    assert check.read("t", "b") == 1
    check.commit()


def test_new_transactions_order_after_restore(db):
    image = take_checkpoint(db)
    restored = restore_checkpoint(image)
    txn = restored.begin("ssi")
    txn.write("t", "a", "new")
    txn.commit()
    chain = restored.table("t").chain("a")
    assert chain.latest().value == "new"
    assert len(chain) == 2  # new version strictly after the restored one
