"""Engine-level 2PC seam: prepare/commit-prepared and prepared-wins.

The coordinator's correctness leans on three engine guarantees added
for sharding (see ``Database.commit_prepared``): a prepared transaction
certifies at PREPARE and installs nothing; between PREPARE and the
global decision it can no longer lose a conflict (prepared-transaction-
wins, and local committers that would endanger it yield); and the
PREPARE summary renders conflict slots with global-id partners, never
voting a flag for an already-aborted partner.
"""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import TransactionStateError, UnsafeError


def _fresh(**overrides) -> Database:
    db = Database(EngineConfig(**overrides))
    db.create_table("t")
    db.load("t", [("x", 0), ("y", 0)])
    return db


def test_prepare_certifies_but_installs_nothing():
    db = _fresh()
    txn = db.begin("ssi")
    db.write(txn, "t", "x", 1)
    summary = db.prepare_for_commit(txn)
    assert summary == {
        "in": False, "out": False, "in_partner": None, "out_partner": None,
    }
    assert txn.is_active and txn.prepared
    # Nothing installed yet: a fresh snapshot still sees the old value.
    reader = db.begin("ssi")
    assert db.read(reader, "t", "x") == 0
    db.commit(reader)
    db.commit_prepared(txn)
    db.finalize_commit(txn)
    assert txn.is_committed
    reader = db.begin("ssi")
    assert db.read(reader, "t", "x") == 1
    db.commit(reader)


def test_commit_prepared_requires_prepare():
    db = _fresh()
    txn = db.begin("ssi")
    db.write(txn, "t", "x", 1)
    with pytest.raises(TransactionStateError):
        db.commit_prepared(txn)
    db.abort(txn)


def test_prepared_pivot_wins_with_reference_tracker():
    """t1 prepares as half a dangerous structure; t2's side completing
    the structure must abort *t2* — t1 can no longer abort locally."""
    db = _fresh()
    t1 = db.begin("ssi")
    t2 = db.begin("ssi")
    db.read(t1, "t", "x")
    db.read(t2, "t", "y")
    db.write(t1, "t", "y", 1)  # t2 -rw-> t1
    summary = db.prepare_for_commit(t1)
    assert summary["in"] is True and summary["out"] is False

    with pytest.raises(UnsafeError):
        # Completing t1 -rw-> t2 makes prepared t1 the pivot; whether the
        # engine dooms t2 at mark time or at its commit, t2 is the victim.
        db.write(t2, "t", "x", 2)
        db.commit(t2)
    assert t2.is_aborted
    assert t1.is_active and t1.prepared
    db.commit_prepared(t1)
    db.finalize_commit(t1)
    assert t1.is_committed


def test_prepared_pivot_wins_with_boolean_tracker():
    db = _fresh(precise_conflicts=False)
    t1 = db.begin("ssi")
    t2 = db.begin("ssi")
    db.read(t1, "t", "x")
    db.read(t2, "t", "y")
    db.write(t1, "t", "y", 1)
    db.prepare_for_commit(t1)
    with pytest.raises(UnsafeError):
        db.write(t2, "t", "x", 2)
        db.commit(t2)
    assert t2.is_aborted
    assert t1.is_active and t1.prepared
    db.commit_prepared(t1)
    db.finalize_commit(t1)
    assert t1.is_committed


def test_summary_renders_global_ids():
    db = _fresh()
    t_reader = db.begin("ssi", global_id=101)
    t_writer = db.begin("ssi", global_id=202)
    db.read(t_reader, "t", "x")
    db.write(t_writer, "t", "x", 1)  # t_reader -rw-> t_writer
    assert db.prepare_for_commit(t_writer) == {
        "in": True, "out": False, "in_partner": 101, "out_partner": None,
    }
    assert db.prepare_for_commit(t_reader) == {
        "in": False, "out": True, "in_partner": None, "out_partner": 202,
    }
    for txn in (t_writer, t_reader):
        db.commit_prepared(txn)
        db.finalize_commit(txn)


def test_aborted_partner_does_not_vote_a_flag():
    db = _fresh()
    t_reader = db.begin("ssi", global_id=301)
    t_writer = db.begin("ssi", global_id=302)
    db.read(t_reader, "t", "x")
    db.write(t_writer, "t", "x", 1)  # t_reader -rw-> t_writer
    db.abort(t_reader)
    # The edge died with its victim (the Fig 3.10 restore rule): the
    # PREPARE vote must not report a conflict with an aborted partner.
    summary = db.prepare_for_commit(t_writer)
    assert summary["in"] is False and summary["in_partner"] is None
    db.commit_prepared(t_writer)
    db.finalize_commit(t_writer)


def test_import_flags_fill_only_empty_slots():
    db = _fresh()
    txn = db.begin("ssi")
    db.write(txn, "t", "x", 1)
    db.prepare_for_commit(txn)
    # The coordinator saw flags on *other* shards: imported here so
    # later local edges against this commit see the global structure.
    db.commit_prepared(txn, import_in=True, import_out=True)
    assert txn.in_conflict is txn and txn.out_conflict is txn
    db.finalize_commit(txn)
    assert txn.is_committed
