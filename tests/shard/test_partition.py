"""Router edge cases: boundary keys, scan fan-out, unknown tables."""

import pytest

from repro.errors import TableError
from repro.shard.partition import (
    PartitionMap,
    sibench_partition_map,
    single_shard_map,
    smallbank_partition_map,
)
from repro.workloads import sibench, smallbank


class TestShardOf:
    def test_boundary_key_belongs_to_lower_shard(self):
        pmap = PartitionMap(2, {"t": ["m"]})
        assert pmap.shard_of("t", "m") == 0
        assert pmap.shard_of("t", "ma") == 1
        assert pmap.shard_of("t", "a") == 0
        assert pmap.shard_of("t", "z") == 1

    def test_three_way_split(self):
        pmap = PartitionMap(3, {"t": [10, 20]})
        assert [pmap.shard_of("t", k) for k in (0, 10, 11, 20, 21, 99)] == [
            0, 0, 1, 1, 2, 2,
        ]

    def test_unknown_table_is_refused(self):
        pmap = PartitionMap(2, {"t": ["m"]})
        with pytest.raises(TableError):
            pmap.shard_of("nope", 1)
        with pytest.raises(TableError):
            pmap.shards_for_scan("nope")

    def test_default_shard_catches_unmapped_tables(self):
        pmap = PartitionMap(4, {"t": [1, 2, 3]}, default_shard=2)
        assert pmap.shard_of("dimension", "anything") == 2
        assert list(pmap.shards_for_scan("dimension")) == [2]
        # Mapped tables still route by range.
        assert pmap.shard_of("t", 0) == 0

    def test_single_shard_map_routes_everything_to_one_shard(self):
        pmap = single_shard_map(2)
        assert pmap.shards == 2
        assert pmap.shard_of("anything", 42) == 0
        assert list(pmap.shards_for_scan("anything", None, None)) == [0]


class TestShardsForScan:
    def test_unbounded_scan_spans_all_shards(self):
        pmap = PartitionMap(4, {"t": [10, 20, 30]})
        assert list(pmap.shards_for_scan("t")) == [0, 1, 2, 3]

    def test_bounded_scan_touches_only_intersecting_shards(self):
        pmap = PartitionMap(4, {"t": [10, 20, 30]})
        assert list(pmap.shards_for_scan("t", 11, 20)) == [1]
        assert list(pmap.shards_for_scan("t", 5, 25)) == [0, 1, 2]
        assert list(pmap.shards_for_scan("t", 31, None)) == [3]
        assert list(pmap.shards_for_scan("t", None, 10)) == [0]

    def test_boundary_endpoints_match_shard_of(self):
        pmap = PartitionMap(3, {"t": [10, 20]})
        for lo, hi in ((10, 10), (10, 11), (20, 21)):
            shards = pmap.shards_for_scan("t", lo, hi)
            assert shards[0] == pmap.shard_of("t", lo)
            assert shards[-1] == pmap.shard_of("t", hi)


class TestValidation:
    def test_wrong_cut_count(self):
        with pytest.raises(ValueError):
            PartitionMap(3, {"t": [10]})

    def test_cuts_must_be_strictly_ascending(self):
        with pytest.raises(ValueError):
            PartitionMap(3, {"t": [20, 10]})
        with pytest.raises(ValueError):
            PartitionMap(3, {"t": [10, 10]})

    def test_default_shard_bounds(self):
        with pytest.raises(ValueError):
            PartitionMap(2, default_shard=2)
        with pytest.raises(ValueError):
            PartitionMap(0)


class TestWorkloadMaps:
    def test_smallbank_customer_rows_are_colocated(self):
        pmap = smallbank_partition_map(shards=4, customers=64)
        for customer in range(64):
            name = smallbank.customer_name(customer)
            home = pmap.shard_of(smallbank.ACCOUNT, name)
            assert pmap.shard_of(smallbank.SAVING, customer) == home
            assert pmap.shard_of(smallbank.CHECKING, customer) == home
            assert pmap.shard_of(smallbank.CONFLICT, customer) == home

    def test_smallbank_map_uses_every_shard(self):
        pmap = smallbank_partition_map(shards=4, customers=64)
        homes = {pmap.shard_of(smallbank.SAVING, c) for c in range(64)}
        assert homes == {0, 1, 2, 3}

    def test_sibench_full_scan_is_cross_shard(self):
        pmap = sibench_partition_map(shards=2, items=10)
        assert list(pmap.shards_for_scan(sibench.TABLE)) == [0, 1]
