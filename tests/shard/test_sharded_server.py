"""Forked shard processes: 2PC over the wire protocol.

Everything the local-coordinator tests prove in-process must survive
the wire: pipelined frames with out-of-order completion on one link,
PREPARE votes travelling as frames, cross-shard abort explanations
annotated with shard ids, and clean lock tables on every shard after
the load drains.
"""

import pytest

from repro.errors import UnsafeError
from repro.shard import (
    PartitionMap,
    ShardCluster,
    run_sharded_stress,
    smallbank_partition_map,
)

CUSTOMERS = 32


@pytest.fixture(scope="module")
def bank_cluster():
    pmap = smallbank_partition_map(2, CUSTOMERS)
    with ShardCluster(pmap, workers=4) as cluster:
        yield cluster


@pytest.fixture()
def traced_cluster():
    pmap = PartitionMap(2, {"t": ["m"]})
    with ShardCluster(pmap, workers=4, trace=True) as cluster:
        cluster.coordinator.create_table("t")
        cluster.coordinator.load(
            "t", [("a", 0), ("b", 0), ("y", 0), ("z", 0)]
        )
        yield cluster


def test_mixed_smallbank_stress_over_the_wire(bank_cluster):
    result = run_sharded_stress(
        bank_cluster.coordinator,
        customers=CUSTOMERS,
        threads=3,
        txns_per_thread=12,
        cross_ratio=0.3,
    )
    assert result.commits > 0
    assert result.cross_shard_attempted > 0
    assert result.commits + result.aborts == result.txns
    assert result.serializable, result.describe()
    assert result.lock_tables_clean, result.shard_audits
    for audit in result.shard_audits:
        assert audit["prepared"] == 0
        assert audit["suspended"] == 0


def test_pipelined_frames_complete_out_of_order(bank_cluster):
    link = bank_cluster.backends[0].link
    # Many frames in flight on one connection; collect the replies in
    # reverse submission order — each slot holds its own reply, so the
    # wait order need not match the wire order.
    slots = [link.submit({"op": "ping"}) for _ in range(40)]
    for slot in reversed(slots):
        assert link.result(slot)["ok"]


def test_single_shard_abort_explanation_over_the_wire(traced_cluster):
    """A shard-certified abort (both conflicts on shard 0): the server's
    trace-derived explanation rides the error reply and the coordinator
    annotates it with the shard id and global-id pivot entries."""
    coordinator = traced_cluster.coordinator
    t1 = coordinator.begin("ssi")
    t2 = coordinator.begin("ssi")
    coordinator.read(t1, "t", "a")
    coordinator.read(t1, "t", "b")
    coordinator.read(t2, "t", "a")
    coordinator.read(t2, "t", "b")
    coordinator.write(t1, "t", "b", 1)  # t2 -rw-> t1
    coordinator.write(t2, "t", "a", 1)  # t1 -rw-> t2
    coordinator.commit(t1)
    # t2 is now the pivot of a complete dangerous structure with a
    # committed out-edge: its (single-shard) commit fails on the shard.
    with pytest.raises(UnsafeError) as info:
        coordinator.commit(t2)
    payload = info.value.explanation
    assert payload["reason"] == "unsafe"
    assert payload["shard"] == 0
    roles = payload["pivot"]
    assert roles["pivot"]["gtid"] == t2.id
    assert roles["t_in"]["gtid"] == t1.id
    assert roles["t_out"]["gtid"] == t1.id
    assert coordinator.explain_abort(t2.id) == payload


def test_cross_shard_abort_explanation_over_the_wire(traced_cluster):
    """The PREPARE summaries travel as frames: each shard votes one half
    of the dangerous structure and the coordinator names both shards in
    the pivot it aborts."""
    coordinator = traced_cluster.coordinator
    t1 = coordinator.begin("ssi")
    t2 = coordinator.begin("ssi")
    coordinator.read(t1, "t", "a")
    coordinator.read(t1, "t", "z")
    coordinator.read(t2, "t", "a")
    coordinator.read(t2, "t", "z")
    coordinator.write(t1, "t", "z", 1)  # shard 1 sees t2 -rw-> t1
    coordinator.write(t2, "t", "a", 1)  # shard 0 sees t1 -rw-> t2
    with pytest.raises(UnsafeError) as info:
        coordinator.commit(t1)
    payload = info.value.explanation
    assert payload["reason"] == "unsafe"
    assert set(payload["pivot"]["pivot"]["shard"]) == {0, 1}
    assert payload["pivot"]["pivot"]["gtid"] == t1.id
    assert payload["pivot"]["t_in"]["gtid"] == t2.id
    assert payload["pivot"]["t_out"]["gtid"] == t2.id
    coordinator.commit(t2)
    # The survivor's commit was a genuine cross-shard 2PC.
    counters = coordinator.metrics.snapshot()["counters"]["coordinator"]
    assert counters["cross_shard_commits"] >= 1
    assert counters["cross_shard_unsafe"] >= 1
