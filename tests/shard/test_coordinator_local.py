"""Coordinator over in-process shards: fast-path equivalence and
cross-shard SSI certification.

Three oracles drive this file:

* the 60-interleaving golden fixture (``tests/properties/data/
  cc_equivalence.json``) — a sharded deployment whose partition map pins
  every table to one shard must produce *exactly* the monolithic
  engine's outcomes at every isolation level (the single-shard fast
  path adds no behaviour);
* the canonical cross-shard write skew, where each shard sees only one
  half of the dangerous structure — the coordinator must abort the
  pivot from the merged PREPARE votes, and demonstrably commits a
  non-serializable history when told to ignore them (``certify=False``);
* the merged-MVSG checker over *every* interleaving of a 100%%
  cross-shard program pair — no order may slip a dangerous structure
  past 2PC certification.
"""

import json
from pathlib import Path

import pytest

from repro.engine.config import EngineConfig
from repro.errors import (
    TableError,
    TransactionStateError,
    UnsafeError,
    UpdateConflictError,
)
from repro.shard import (
    Coordinator,
    LocalShard,
    PartitionMap,
    check_merged_serializable,
    run_sharded_stress,
    single_shard_map,
    smallbank_partition_map,
)
from repro.sim.interleave import exhaustive_outcomes, run_interleaving
from repro.sim.ops import Read, Write

from scripts.gen_cc_equivalence import LEVELS, SCENARIOS

DATA = Path(__file__).parent.parent / "properties" / "data" / "cc_equivalence.json"
FACTORIES = dict(SCENARIOS)

with DATA.open() as handle:
    CASES = json.load(handle)["cases"]


def _pinned_coordinator(config: EngineConfig) -> Coordinator:
    """Two shards, every table pinned to shard 0 — the fast-path rig."""
    return Coordinator(
        [LocalShard(config), LocalShard(config)], single_shard_map(2)
    )


@pytest.mark.parametrize(
    "case",
    CASES,
    ids=[f"{case['scenario']}-{case['seed']}" for case in CASES],
)
def test_single_shard_fast_path_matches_monolithic_engine(case):
    factory = FACTORIES[case["scenario"]]
    for level in LEVELS:
        setup, programs, _step_counts = factory()
        outcome = run_interleaving(
            setup,
            programs,
            case["order"],
            isolation=level,
            engine_config=EngineConfig(record_history=True),
            db_factory=_pinned_coordinator,
        )
        got = {str(index): status for index, status in outcome.statuses.items()}
        assert got == case["outcomes"][level], (
            f"sharded fast path diverged from the monolithic engine: "
            f"{case['scenario']} seed={case['seed']} at {level}"
        )


# --------------------------------------------------------- cross-shard SSI


def _split_cluster(certify: bool = True) -> Coordinator:
    """Table ``t`` split at "m": "a" lives on shard 0, "z" on shard 1."""
    coordinator = Coordinator(
        [LocalShard(), LocalShard()],
        PartitionMap(2, {"t": ["m"]}),
        certify=certify,
    )
    coordinator.create_table("t")
    coordinator.load("t", [("a", 0), ("z", 0)])
    return coordinator


def _run_write_skew(coordinator):
    """T1 reads both, writes z; T2 reads both, writes a.  Each shard
    sees exactly one rw-antidependency — the dangerous structure exists
    only in the union."""
    t1 = coordinator.begin("ssi")
    t2 = coordinator.begin("ssi")
    coordinator.read(t1, "t", "a")
    coordinator.read(t1, "t", "z")
    coordinator.read(t2, "t", "a")
    coordinator.read(t2, "t", "z")
    coordinator.write(t1, "t", "z", 1)
    coordinator.write(t2, "t", "a", 1)
    return t1, t2


def test_cross_shard_write_skew_aborts_the_pivot():
    coordinator = _split_cluster()
    t1, t2 = _run_write_skew(coordinator)
    with pytest.raises(UnsafeError) as info:
        coordinator.commit(t1)
    assert t1.is_aborted
    coordinator.commit(t2)
    assert t2.is_committed
    assert check_merged_serializable(coordinator.shard_histories()).serializable

    # The annotated pivot triple: partner gtids plus contributing shards.
    payload = info.value.explanation
    assert payload["reason"] == "unsafe"
    pivot = payload["pivot"]
    assert pivot["pivot"]["gtid"] == t1.id
    assert set(pivot["pivot"]["shard"]) == {0, 1}
    assert pivot["t_in"]["gtid"] == t2.id
    assert pivot["t_out"]["gtid"] == t2.id
    assert set(payload["votes"]) == {"0", "1"}
    # explain_abort returns the same payload after the fact.
    assert coordinator.explain_abort(t1.id) == payload

    counters = coordinator.metrics.snapshot()["counters"]["coordinator"]
    assert counters["cross_shard_unsafe"] == 1
    assert counters["cross_shard_commits"] == 1


def test_ignoring_prepare_summaries_commits_non_serializably():
    coordinator = _split_cluster(certify=False)
    t1, t2 = _run_write_skew(coordinator)
    # Each shard's local certification sees half the structure and lets
    # both through — the regression the merged-flag check exists for.
    coordinator.commit(t1)
    coordinator.commit(t2)
    report = check_merged_serializable(coordinator.shard_histories())
    assert not report.serializable
    assert {t1.id, t2.id} <= set(report.cycle)


def test_adversarial_interleavings_never_slip_a_dangerous_structure():
    """Every interleaving of a 100% cross-shard write-skew pair: with
    certification every merged history is serializable; without it (or
    under plain SI) some interleaving commits the anomaly."""

    def setup(db):
        db.create_table("acct")
        db.load("acct", [("a", 100), ("z", 100)])

    def p0():
        a = yield Read("acct", "a")
        z = yield Read("acct", "z")
        yield Write("acct", "z", a + z)

    def p1():
        a = yield Read("acct", "a")
        z = yield Read("acct", "z")
        yield Write("acct", "a", a + z)

    def factory(certify):
        def build(config):
            return Coordinator(
                [LocalShard(config), LocalShard(config)],
                PartitionMap(2, {"acct": ["m"]}),
                certify=certify,
            )

        return build

    certified = exhaustive_outcomes(
        setup, [p0, p1], [4, 4], isolation="ssi", db_factory=factory(True)
    )
    assert len(certified) == 70
    for outcome in certified:
        report = check_merged_serializable(outcome.db.shard_histories())
        assert report.serializable, (
            f"order {outcome.order} slipped a dangerous structure: "
            f"{report.describe()}"
        )
    # The fixture is not vacuous: the dangerous orders exist and abort.
    assert any(not outcome.all_committed for outcome in certified)
    assert any(outcome.all_committed for outcome in certified)

    uncertified = exhaustive_outcomes(
        setup, [p0, p1], [4, 4], isolation="ssi", db_factory=factory(False)
    )
    assert any(
        outcome.all_committed
        and not check_merged_serializable(
            outcome.db.shard_histories()
        ).serializable
        for outcome in uncertified
    ), "certify=False should admit the cross-shard write skew"

    plain_si = exhaustive_outcomes(
        setup, [p0, p1], [4, 4], isolation="si", db_factory=factory(True)
    )
    assert any(
        outcome.all_committed
        and not check_merged_serializable(
            outcome.db.shard_histories()
        ).serializable
        for outcome in plain_si
    ), "plain SI should exhibit the anomaly the merged oracle detects"


# ------------------------------------------------------- snapshot cuts


def test_escalating_across_a_cross_shard_commit_is_a_conflict():
    coordinator = _split_cluster()
    txn = coordinator.begin("ssi")
    assert coordinator.read(txn, "t", "a") == 0  # view pinned at [0, 0]

    other = coordinator.begin("ssi")
    coordinator.write(other, "t", "a", 7)
    coordinator.write(other, "t", "z", 7)
    coordinator.commit(other)  # cross-shard: bumps both vector entries

    with pytest.raises(UpdateConflictError):
        coordinator.read(txn, "t", "z")  # escalation after the cut
    assert txn.is_aborted
    assert coordinator.explain_abort(txn.id)["reason"] == "conflict"
    counters = coordinator.metrics.snapshot()["counters"]["coordinator"]
    assert counters["escalation_conflicts"] == 1


def test_single_shard_commits_never_touch_the_visibility_vector():
    coordinator = _split_cluster()
    txn = coordinator.begin("ssi")
    coordinator.write(txn, "t", "a", 1)
    coordinator.commit(txn)
    assert coordinator._csn == [0, 0]
    counters = coordinator.metrics.snapshot()["counters"]["coordinator"]
    assert counters["single_shard_commits"] == 1
    assert counters["cross_shard_commits"] == 0


# ------------------------------------------------------------- routing


def test_scan_spans_shards_in_key_order():
    coordinator = _split_cluster()
    coordinator.load("t", [("b", 1), ("n", 2), ("x", 3)])
    txn = coordinator.begin("ssi")
    rows = coordinator.scan(txn, "t")
    assert [key for key, _value in rows] == ["a", "b", "n", "x", "z"]
    bounded = coordinator.scan(txn, "t", "b", "n")
    assert [key for key, _value in bounded] == ["b", "n"]
    coordinator.commit(txn)


def test_unknown_table_is_refused_before_touching_any_shard():
    coordinator = _split_cluster()
    txn = coordinator.begin("ssi")
    with pytest.raises(TableError):
        coordinator.read(txn, "nope", 1)
    assert txn.is_active  # routing errors don't abort the transaction
    coordinator.abort(txn)


def test_deferrable_is_not_supported():
    coordinator = _split_cluster()
    with pytest.raises(TransactionStateError):
        coordinator.begin("ssi", read_only=True, deferrable=True)


def test_explain_abort_of_unknown_gtid():
    coordinator = _split_cluster()
    with pytest.raises(TransactionStateError):
        coordinator.explain_abort(424242)


# ---------------------------------------------------------- mixed load


def test_local_sharded_stress_is_serializable_and_clean():
    customers = 32
    pmap = smallbank_partition_map(2, customers)
    coordinator = Coordinator([LocalShard(), LocalShard()], pmap)
    result = run_sharded_stress(
        coordinator,
        customers=customers,
        threads=4,
        txns_per_thread=15,
        cross_ratio=0.3,
    )
    assert result.serializable, result.describe()
    assert result.lock_tables_clean, result.shard_audits
    assert result.commits > 0
    assert result.cross_shard_attempted > 0
    assert result.commits + result.aborts == result.txns
    gauge = result.metrics["gauges"]["shard_txn_counts"]
    assert gauge["0"] > 0 and gauge["1"] > 0
