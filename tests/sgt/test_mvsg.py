"""MVSG construction and cycle detection tests."""

from repro.sgt.history import HistoryRecorder
from repro.sgt.mvsg import build_mvsg
from repro.sgt.checker import check_serializable


def make_history(txns):
    """txns: list of dicts with id, begin, commit, ops (kind, table, key,
    version_ts)."""
    history = HistoryRecorder()
    for txn in txns:
        history.on_begin(txn["id"])
        history.on_snapshot(txn["id"], txn["begin"])
        for op in txn.get("ops", ()):
            kind = op[0]
            if kind == "read":
                history.on_read(txn["id"], op[1], op[2], op[3])
            elif kind == "scan":
                history.on_scan(txn["id"], op[1], op[2], op[3], txn["begin"])
            else:
                history.on_write(txn["id"], op[1], op[2], kind=kind)
        if txn.get("commit"):
            history.on_commit(txn["id"], txn["commit"])
    return history


def test_serial_history_acyclic():
    history = make_history([
        {"id": 1, "begin": 1, "commit": 2,
         "ops": [("read", "t", "x", 0), ("write", "t", "x")]},
        {"id": 2, "begin": 3, "commit": 4,
         "ops": [("read", "t", "x", 2), ("write", "t", "x")]},
    ])
    graph = build_mvsg(history)
    assert graph.find_cycle() == []
    # wr and ww edges from T1 to T2 exist.
    kinds = {(e.src, e.dst, e.kind) for e in graph.edges}
    assert (1, 2, "wr") in kinds
    assert (1, 2, "ww") in kinds


def test_write_skew_cycle_detected():
    # T1 reads x,y writes x; T2 reads x,y writes y; concurrent snapshots.
    history = make_history([
        {"id": 1, "begin": 1, "commit": 10,
         "ops": [("read", "t", "x", 0), ("read", "t", "y", 0), ("write", "t", "x")]},
        {"id": 2, "begin": 1, "commit": 11,
         "ops": [("read", "t", "x", 0), ("read", "t", "y", 0), ("write", "t", "y")]},
    ])
    graph = build_mvsg(history)
    cycle = graph.find_cycle()
    assert set(cycle) == {1, 2}
    rw = {(e.src, e.dst) for e in graph.rw_edges()}
    assert (1, 2) in rw and (2, 1) in rw
    assert set(graph.pivots_in_cycle()) == {1, 2}


def test_aborted_txn_excluded():
    history = make_history([
        {"id": 1, "begin": 1, "commit": 10,
         "ops": [("read", "t", "x", 0), ("write", "t", "x")]},
        {"id": 2, "begin": 1, "commit": None,
         "ops": [("read", "t", "x", 0), ("write", "t", "x")]},
    ])
    history.on_abort(2)
    graph = build_mvsg(history)
    assert graph.nodes == {1}
    assert graph.edges == set()


def test_phantom_edge_from_scan():
    # T1 scans [0, 100] at ts 1; T2 inserts key 5 committing at ts 10.
    history = make_history([
        {"id": 1, "begin": 1, "commit": 12,
         "ops": [("scan", "t", (0, 100), ())]},
        {"id": 2, "begin": 1, "commit": 10,
         "ops": [("insert", "t", 5)]},
    ])
    graph = build_mvsg(history)
    rw = {(e.src, e.dst) for e in graph.rw_edges()}
    assert (1, 2) in rw


def test_scan_outside_range_no_edge():
    history = make_history([
        {"id": 1, "begin": 1, "commit": 12,
         "ops": [("scan", "t", (0, 3), ())]},
        {"id": 2, "begin": 1, "commit": 10,
         "ops": [("insert", "t", 5)]},
    ])
    graph = build_mvsg(history)
    assert graph.rw_edges() == []


def test_read_of_absent_key_antidependency():
    # T1 reads key k (absent), T2 creates k later: rw edge T1 -> T2.
    history = make_history([
        {"id": 1, "begin": 1, "commit": 12,
         "ops": [("read", "t", "k", None)]},
        {"id": 2, "begin": 1, "commit": 10,
         "ops": [("insert", "t", "k")]},
    ])
    graph = build_mvsg(history)
    assert {(e.src, e.dst) for e in graph.rw_edges()} == {(1, 2)}


def test_checker_reports():
    history = make_history([
        {"id": 1, "begin": 1, "commit": 10,
         "ops": [("read", "t", "x", 0), ("write", "t", "y")]},
    ])
    report = check_serializable(history)
    assert report.serializable
    assert "serializable" in report.describe()


def test_checker_describes_cycle():
    history = make_history([
        {"id": 1, "begin": 1, "commit": 10,
         "ops": [("read", "t", "x", 0), ("write", "t", "y")]},
        {"id": 2, "begin": 1, "commit": 11,
         "ops": [("read", "t", "y", 0), ("write", "t", "x")]},
    ])
    report = check_serializable(history)
    assert not report.serializable
    assert "NON-SERIALIZABLE" in report.describe()
    assert not bool(report)
