"""MVSG Graphviz rendering tests."""

from repro.sgt.history import HistoryRecorder
from repro.sgt.mvsg import build_mvsg


def history_with_cycle():
    history = HistoryRecorder()
    for txn_id in (1, 2):
        history.on_begin(txn_id)
        history.on_snapshot(txn_id, 1)
    history.on_read(1, "t", "x", 0)
    history.on_write(1, "t", "y")
    history.on_read(2, "t", "y", 0)
    history.on_write(2, "t", "x")
    history.on_commit(1, 10)
    history.on_commit(2, 11)
    return history


def test_to_dot_marks_cycle_and_edge_styles():
    graph = build_mvsg(history_with_cycle())
    dot = graph.to_dot()
    assert dot.startswith("digraph MVSG")
    assert '"T1" -> "T2" [style=dashed, label="rw"]' in dot
    assert '"T2" -> "T1" [style=dashed, label="rw"]' in dot
    assert dot.count("fillcolor") == 2  # both nodes on the cycle


def test_to_dot_acyclic_unhighlighted():
    history = HistoryRecorder()
    history.on_begin(1)
    history.on_snapshot(1, 1)
    history.on_write(1, "t", "x")
    history.on_commit(1, 5)
    dot = build_mvsg(history).to_dot()
    assert "fillcolor" not in dot
    assert '"T1"' in dot
