"""HistoryRecorder unit tests."""

from repro.sgt.history import HistoryRecorder, OpRecord


def test_lifecycle_recording():
    history = HistoryRecorder()
    history.on_begin(1)
    history.on_snapshot(1, 100)
    history.on_read(1, "t", "k", 50)
    history.on_write(1, "t", "k")
    history.on_commit(1, 110)
    record = history.transactions[1]
    assert record.begin_ts == 100
    assert record.commit_ts == 110
    assert record.committed
    assert len(list(record.reads())) == 1
    assert len(list(record.writes())) == 1


def test_snapshot_recorded_once():
    history = HistoryRecorder()
    history.on_begin(1)
    history.on_snapshot(1, 100)
    history.on_snapshot(1, 200)  # ignored
    assert history.transactions[1].begin_ts == 100


def test_abort_status():
    history = HistoryRecorder()
    history.on_begin(1)
    history.on_abort(1)
    assert history.transactions[1].status == "aborted"
    assert history.committed() == []


def test_scan_record():
    history = HistoryRecorder()
    history.on_begin(1)
    history.on_scan(1, "t", (0, 10), (1, 2, 3), read_ts=5)
    (scan,) = list(history.transactions[1].scans())
    assert scan.key == (0, 10)
    assert scan.seen_keys == (1, 2, 3)
    assert scan.version_ts == 5


def test_ops_for_unknown_txn_create_record():
    history = HistoryRecorder()
    history.on_read(9, "t", "k", None)
    assert 9 in history.transactions


def test_write_kinds():
    history = HistoryRecorder()
    history.on_begin(1)
    history.on_write(1, "t", "a", kind="insert")
    history.on_write(1, "t", "b", kind="delete")
    kinds = [op.kind for op in history.transactions[1].writes()]
    assert kinds == ["insert", "delete"]
