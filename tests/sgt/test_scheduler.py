"""SGTCertifier unit tests."""

from repro.sgt.scheduler import SGTCertifier


def test_acyclic_edges_return_empty():
    certifier = SGTCertifier()
    assert certifier.add_dependency(1, 2) == []
    assert certifier.add_dependency(2, 3) == []
    assert certifier.stats["cycles"] == 0


def test_cycle_returned_with_path():
    certifier = SGTCertifier()
    certifier.add_dependency(1, 2)
    certifier.add_dependency(2, 3)
    cycle = certifier.add_dependency(3, 1)
    assert cycle[0] == 3
    assert set(cycle) == {1, 2, 3}
    assert certifier.stats["cycles"] == 1


def test_self_edge_ignored():
    certifier = SGTCertifier()
    assert certifier.add_dependency(5, 5) == []


def test_remove_breaks_cycle():
    certifier = SGTCertifier()
    certifier.add_dependency(1, 2)
    certifier.add_dependency(2, 1)
    certifier.remove(2)
    assert certifier.add_dependency(1, 3) == []
    assert not certifier.has_incoming(1)


def test_has_incoming():
    certifier = SGTCertifier()
    certifier.add_dependency(1, 2)
    assert certifier.has_incoming(2)
    assert not certifier.has_incoming(1)
    certifier.remove(1)
    assert not certifier.has_incoming(2)


def test_would_cycle_is_non_mutating():
    certifier = SGTCertifier()
    certifier.add_dependency(1, 2)
    assert certifier.would_cycle(2, 1)
    assert not certifier.would_cycle(1, 2)
    # graph unchanged: adding the edge still reports the cycle
    assert certifier.add_dependency(2, 1) != []


def test_node_count_tracks_registrations():
    certifier = SGTCertifier()
    certifier.register(1)
    certifier.add_dependency(2, 3)
    assert certifier.node_count() == 3
    certifier.remove(3)
    assert certifier.node_count() == 2


def test_duplicate_edges_harmless():
    certifier = SGTCertifier()
    certifier.add_dependency(1, 2)
    certifier.add_dependency(1, 2)
    assert certifier.add_dependency(2, 1) != []
