"""Wire batching and codec negotiation (PR 9).

The ``batch`` frame (many id-tagged requests per read), the ``hello``
codec handshake with transparent JSON fallback, and the pipelined
client's automatic send-queue coalescing.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

from repro.client import BlockingClient, PipelinedClient
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.server import ReproServer
from repro.server.protocol import (
    CODECS,
    decode_frame,
    encode_frame,
    negotiate_codec,
    read_frame_sock,
    send_frame_sock,
)

from tests.server.test_server import run_with_server


@pytest.fixture
def server_db():
    db = Database(EngineConfig(record_history=True))
    return db


class TestCodecRegistry:
    def test_json_always_available(self):
        assert "json" in CODECS

    def test_negotiate_picks_first_supported(self):
        assert negotiate_codec(["json"]) == "json"
        assert negotiate_codec(["no-such-codec", "json"]) == "json"

    def test_negotiate_falls_back_to_json(self):
        assert negotiate_codec(["no-such-codec"]) == "json"
        assert negotiate_codec(None) == "json"
        assert negotiate_codec("json") == "json"  # not a list: fallback
        assert negotiate_codec([42, "json"]) == "json"

    def test_explicit_codec_round_trip(self):
        for codec in CODECS:
            frame = {"op": "put", "key": ["k", 3], "value": {"n": 1.5}}
            assert decode_frame(encode_frame(frame, codec)[4:], codec) == frame


class TestHelloHandshake:
    def test_blocking_client_negotiates_with_fallback(self, server_db):
        async def body(server):
            def blocking():
                client = BlockingClient.connect(
                    port=server.port, codecs=("msgpack", "json")
                )
                # msgpack is only picked when installed server-side;
                # either way the connection keeps working.
                assert client.codec in CODECS
                client.create_table("t")
                client.begin("ssi")
                client.put("t", "a", 1)
                client.commit()
                client.begin("si")
                value = client.get("t", "a")
                client.commit()
                client.close()
                return value

            return await asyncio.get_running_loop().run_in_executor(
                None, blocking
            )

        assert run_with_server(server_db, body) == 1

    def test_unknown_codec_degrades_to_json(self, server_db):
        async def body(server):
            def blocking():
                client = BlockingClient.connect(
                    port=server.port, codecs=("no-such-codec",)
                )
                assert client.codec == "json"
                assert client.ping()["ok"]
                client.close()

            await asyncio.get_running_loop().run_in_executor(None, blocking)

        run_with_server(server_db, body)

    def test_pipelined_client_handshake(self, server_db):
        async def body(server):
            def blocking():
                link = PipelinedClient(
                    port=server.port, codecs=("msgpack", "json")
                )
                assert link.codec in CODECS
                assert link.ping()["ok"]
                link.close()

            await asyncio.get_running_loop().run_in_executor(None, blocking)

        run_with_server(server_db, body)


class TestBatchFrames:
    def test_batch_dispatches_every_inner_frame(self, server_db):
        server_db.create_table("t")

        async def body(server):
            def blocking():
                sock = socket.create_connection(("127.0.0.1", server.port))
                frames = [
                    {"op": "ping", "id": n} for n in range(5)
                ]
                send_frame_sock(sock, {"op": "batch", "frames": frames})
                got = {read_frame_sock(sock)["id"] for _ in range(5)}
                sock.close()
                return got

            return await asyncio.get_running_loop().run_in_executor(
                None, blocking
            )

        assert run_with_server(server_db, body) == {0, 1, 2, 3, 4}

    def test_batch_without_ids_rejected(self, server_db):
        async def body(server):
            def blocking():
                sock = socket.create_connection(("127.0.0.1", server.port))
                send_frame_sock(
                    sock, {"op": "batch", "frames": [{"op": "ping"}]}
                )
                reply = read_frame_sock(sock)
                sock.close()
                return reply

            return await asyncio.get_running_loop().run_in_executor(
                None, blocking
            )

        reply = run_with_server(server_db, body)
        assert reply["ok"] is False and reply["error"] == "ProtocolError"

    def test_batch_with_non_list_frames_rejected(self, server_db):
        async def body(server):
            def blocking():
                sock = socket.create_connection(("127.0.0.1", server.port))
                send_frame_sock(sock, {"op": "batch", "frames": "nope"})
                reply = read_frame_sock(sock)
                sock.close()
                return reply

            return await asyncio.get_running_loop().run_in_executor(
                None, blocking
            )

        assert run_with_server(server_db, body)["ok"] is False

    def test_nested_batch_rejected_per_frame(self, server_db):
        async def body(server):
            def blocking():
                sock = socket.create_connection(("127.0.0.1", server.port))
                send_frame_sock(sock, {
                    "op": "batch",
                    "frames": [{"op": "batch", "frames": [], "id": 7}],
                })
                reply = read_frame_sock(sock)
                sock.close()
                return reply

            return await asyncio.get_running_loop().run_in_executor(
                None, blocking
            )

        reply = run_with_server(server_db, body)
        assert reply["ok"] is False and reply["id"] == 7


class TestClientCoalescing:
    def test_submit_many_sends_one_batch_frame(self, server_db):
        async def body(server):
            def blocking():
                link = PipelinedClient(port=server.port)
                slots = link.submit_many([{"op": "ping"}] * 8)
                for slot in slots:
                    assert link.result(slot)["ok"]
                stats = dict(link.stats)
                link.close()
                return stats

            return await asyncio.get_running_loop().run_in_executor(
                None, blocking
            )

        stats = run_with_server(server_db, body)
        assert stats["frames_sent"] == 1
        assert stats["batches_sent"] == 1
        assert stats["coalesced_ops"] == 8

    def test_lone_submit_goes_plain(self, server_db):
        async def body(server):
            def blocking():
                link = PipelinedClient(port=server.port)
                assert link.ping()["ok"]
                stats = dict(link.stats)
                link.close()
                return stats

            return await asyncio.get_running_loop().run_in_executor(
                None, blocking
            )

        stats = run_with_server(server_db, body)
        assert stats["frames_sent"] == 1
        assert stats["batches_sent"] == 0

    def test_concurrent_submitters_still_all_answered(self, server_db):
        """Many threads submitting at once: coalescing is opportunistic,
        correctness is not — every submission gets its reply."""
        async def body(server):
            def blocking():
                link = PipelinedClient(port=server.port)
                replies = []
                lock = threading.Lock()

                def hammer():
                    for _ in range(20):
                        reply = link.call({"op": "ping"})
                        with lock:
                            replies.append(reply["ok"])

                workers = [
                    threading.Thread(target=hammer) for _ in range(6)
                ]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
                stats = dict(link.stats)
                link.close()
                return replies, stats

            return await asyncio.get_running_loop().run_in_executor(
                None, blocking
            )

        replies, stats = run_with_server(server_db, body)
        assert len(replies) == 120 and all(replies)
        assert stats["frames_sent"] >= 1

    def test_transactions_over_batched_link(self, server_db):
        """Real ops (not pings) through submit_many: a full write
        transaction per inner frame, every reply settled correctly."""
        server_db.create_table("t")

        async def body(server):
            def blocking():
                link = PipelinedClient(port=server.port)
                gtids = [101, 102, 103]
                for gtid in gtids:
                    slots = link.submit_many([
                        {"op": "begin", "txn": gtid, "isolation": "ssi"},
                    ])
                    link.result(slots[0])
                slots = link.submit_many([
                    {"op": "put", "txn": gtid, "table": "t",
                     "key": f"k{gtid}", "value": gtid}
                    for gtid in gtids
                ])
                for slot in slots:
                    link.result(slot)
                slots = link.submit_many([
                    {"op": "commit", "txn": gtid} for gtid in gtids
                ])
                for slot in slots:
                    link.result(slot)
                link.close()

            await asyncio.get_running_loop().run_in_executor(None, blocking)

        run_with_server(server_db, body)
        check = server_db.begin("si")
        for gtid in (101, 102, 103):
            assert check.read("t", f"k{gtid}") == gtid
        check.commit()
