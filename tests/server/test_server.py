"""Wire-protocol server: framing, error mapping, connection lifecycle."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.client import AsyncClient, BlockingClient, ServerError
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import (
    KeyNotFoundError,
    TransactionAbortedError,
    UnsafeError,
)
from repro.server import ReproServer
from repro.server.protocol import (
    MAX_FRAME,
    FrameError,
    decode_frame,
    encode_frame,
)


class TestFraming:
    def test_round_trip(self):
        frame = {"op": "put", "key": ["compound", 3], "value": {"n": 1.5}}
        assert decode_frame(encode_frame(frame)[4:]) == frame

    def test_rejects_non_dict(self):
        with pytest.raises(FrameError):
            decode_frame(b"[1, 2]")
        with pytest.raises(FrameError):
            decode_frame(b"not json")

    def test_rejects_oversized_header(self):
        async def read_it():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", MAX_FRAME + 1))
            from repro.server.protocol import read_frame_async
            return await read_frame_async(reader)

        with pytest.raises(FrameError):
            asyncio.run(read_it())


@pytest.fixture
def server_db():
    db = Database(EngineConfig(record_history=True))
    db.enable_tracing()
    return db


def run_with_server(db, body, *, workers: int = 2):
    """Start a server on an ephemeral port, run ``body(server)`` in the
    event loop, always stop the server."""

    async def main():
        server = ReproServer(db, workers=workers)
        await server.start()
        try:
            return await body(server)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestServer:
    def test_round_trip_and_admin(self, server_db):
        async def body(server):
            client = await AsyncClient.connect(port=server.port)
            info = await client.ping()
            assert info["server"] == "repro" and info["connections"] == 1
            await client.create_table("t")
            await client.load("t", [("a", 1), ("b", 2)])
            txn = await client.begin("ssi")
            assert isinstance(txn, int)
            assert await client.read("t", "a") == 1
            assert await client.get("t", "zzz", "fallback") == "fallback"
            await client.put("t", "a", 10)
            await client.insert("t", "c", 3)
            await client.delete("t", "b")
            assert await client.scan("t") == [["a", 10], ["c", 3]] or \
                await client.scan("t") == [("a", 10), ("c", 3)]
            await client.commit()
            await client.close()

        run_with_server(server_db, body)
        check = server_db.begin("si")
        assert check.read("t", "a") == 10
        check.commit()

    def test_error_frames_map_to_exception_classes(self, server_db):
        server_db.create_table("t")
        server_db.load("t", [("k", 0)])

        async def body(server):
            client = await AsyncClient.connect(port=server.port)
            await client.begin("ssi")
            with pytest.raises(KeyNotFoundError):
                await client.read("t", "missing")
            # connection (and transaction) survive a failed op
            assert await client.read("t", "k") == 0
            await client.abort()
            with pytest.raises(ServerError) as info:
                await client._call({"op": "no_such_op"})
            assert info.value.remote_error == "ProtocolError"
            await client.close()

        run_with_server(server_db, body)

    def test_abort_reply_carries_reason_and_explanation(self, server_db):
        """An SSI dangerous-structure abort travels the wire with its
        machine-readable reason and the explain_abort payload."""
        server_db.create_table("t")
        server_db.load("t", [("x", 0), ("y", 0)])

        async def body(server):
            pivot = await AsyncClient.connect(port=server.port)
            t_in = await AsyncClient.connect(port=server.port)
            t_out = await AsyncClient.connect(port=server.port)
            await pivot.begin("ssi")
            await t_in.begin("ssi")
            await t_out.begin("ssi")
            await t_out.put("t", "y", 1)
            await pivot.read("t", "y")      # pivot -rw-> t_out
            await pivot.put("t", "x", 1)
            await t_in.read("t", "x")       # t_in -rw-> pivot
            await t_out.commit()
            await t_in.commit()
            with pytest.raises(TransactionAbortedError) as info:
                await pivot.commit()
            error = info.value
            assert error.reason == "unsafe"
            assert isinstance(error, UnsafeError)
            explanation = error.explanation
            assert explanation is not None
            assert explanation["reason"] == "unsafe"
            assert explanation["pivot"] is not None
            assert "dangerous structure" in explanation["text"]
            for client in (pivot, t_in, t_out):
                await client.close()

        run_with_server(server_db, body)

    def test_more_connections_than_workers(self, server_db):
        """16 concurrent transactional connections on a 2-worker pool:
        suspension (not thread count) carries the concurrency."""
        server_db.create_table("acct")
        server_db.load("acct", [(i, 100) for i in range(4)])

        async def body(server):
            async def transfer(index):
                client = await AsyncClient.connect(port=server.port)
                try:
                    for _ in range(3):
                        try:
                            await client.begin("ssi")
                            src, dst = index % 4, (index + 1) % 4
                            a = await client.read("acct", src)
                            b = await client.read("acct", dst)
                            await client.put("acct", src, a - 1)
                            await client.put("acct", dst, b + 1)
                            await client.commit()
                        except TransactionAbortedError:
                            pass
                finally:
                    await client.close()

            await asyncio.gather(*(transfer(i) for i in range(16)))

        run_with_server(server_db, body, workers=2)
        total = 0
        check = server_db.begin("si")
        for _key, value in check.scan("acct"):
            total += value
        check.commit()
        assert total == 400  # transfers conserve money
        assert server_db.locks.table_size() == 0
        assert len(server_db.locks._waiting) == 0

    def test_disconnect_releases_locks_and_wakes_nobody_forever(self, server_db):
        """A client that vanishes mid-transaction (even mid-lock-wait)
        must not strand engine state: its txn aborts, locks release."""
        server_db.create_table("t")
        server_db.load("t", [("x", 0)])

        async def body(server):
            holder = await AsyncClient.connect(port=server.port)
            await holder.begin("s2pl")
            await holder.read_for_update("t", "x")

            waiter = await AsyncClient.connect(port=server.port)
            await waiter.begin("s2pl")
            wait_task = asyncio.ensure_future(waiter.read_for_update("t", "x"))
            await asyncio.sleep(0.1)
            assert not wait_task.done()
            # the waiter vanishes while suspended on the lock queue
            await waiter.close()
            wait_task.cancel()
            try:
                await wait_task
            except (asyncio.CancelledError, Exception):
                pass
            # ...and the holder vanishes while owning the lock
            await holder.close()
            # a fresh connection can take the lock immediately
            fresh = await AsyncClient.connect(port=server.port)
            await fresh.begin("s2pl")
            assert await fresh.read_for_update("t", "x") == 0
            await fresh.commit()
            await fresh.close()

        run_with_server(server_db, body)
        assert server_db.locks.table_size() == 0
        assert len(server_db.locks._by_owner) == 0
        assert len(server_db.locks._waiting) == 0

    def test_blocking_client_from_thread(self, server_db):
        server_db.create_table("t")

        async def body(server):
            loop = asyncio.get_running_loop()

            def blocking_work():
                with BlockingClient.connect(port=server.port) as client:
                    client.begin("ssi")
                    client.insert("t", "k", "v")
                    client.commit()
                    client.begin("si", read_only=True)
                    assert client.read("t", "k") == "v"
                    client.commit()

            await loop.run_in_executor(None, blocking_work)

        run_with_server(server_db, body)

    def test_deferrable_begin_over_the_wire(self, server_db):
        """A deferrable begin suspends server-side until safe; the reply
        frame arrives only after the verdict — without pinning a worker
        or the event loop."""
        server_db.create_table("t")
        server_db.load("t", [(1, "a")])
        writer = server_db.begin("ssi")
        writer.read("t", 1)  # rw txn the monitor must watch

        async def body(server):
            client = await AsyncClient.connect(port=server.port)
            begin_task = asyncio.ensure_future(
                client.begin("ssi", deferrable=True))
            await asyncio.sleep(0.15)
            assert not begin_task.done()  # still waiting on the verdict

            def release():
                writer.write("t", 1, "w")
                writer.commit()

            await asyncio.get_running_loop().run_in_executor(None, release)
            txn = await asyncio.wait_for(begin_task, timeout=10)
            assert isinstance(txn, int)
            assert await client.read("t", 1) == "a"
            await client.commit()
            await client.close()

        run_with_server(server_db, body, workers=1)
