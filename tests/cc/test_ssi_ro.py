"""The read-only optimization (Ports & Grittner, VLDB 2012, Section 2.4).

A dangerous structure ``T_in --rw--> pivot --rw--> T_out`` whose incoming
transaction is read-only threatens serializability only when ``T_out``
committed *before* ``T_in``'s snapshot.  Stock SSI aborts the pivot
regardless; ``ssi-ro`` excuses the false-positive half of the space and
keeps the true-positive half.
"""

import pytest

from repro import Database, EngineConfig
from repro.errors import TransactionAbortedError
from repro.sgt.checker import check_serializable

from tests.conftest import fill


def _false_positive_structure(db, level):
    """Build the P&G false positive at ``level`` for the pivot's peers.

    R (read-only) snapshots, then T_out (T2) commits, then R commits:
    the pivot T1 holds in=R, out=T2 with commit(T2) <= commit(R), which
    the commit-order test calls dangerous — yet R's snapshot predates
    T2's commit, so R serializes before T2 and no cycle can close.
    Returns the pivot's outcome: "commit" or its abort reason.
    """
    fill(db, "t", {"x": 0, "y": 0})
    reader = db.begin(level)
    reader.read("t", "x")
    reader.read("t", "y")
    pivot = db.begin(level)
    pivot.read("t", "y")
    t_out = db.begin(level)
    t_out.write("t", "y", 1)
    t_out.commit()
    reader.commit()
    try:
        pivot.write("t", "x", 1)
        pivot.commit()
        return "commit"
    except TransactionAbortedError as error:
        return error.reason


class TestFalsePositiveExcused:
    def test_stock_ssi_aborts_the_pivot(self, db):
        assert _false_positive_structure(db, "ssi") == "unsafe"
        assert db.tracker.stats["excused"] == 0

    def test_ssi_ro_commits_the_pivot(self, db):
        assert _false_positive_structure(db, "ssi-ro") == "commit"
        assert db.tracker.stats["excused"] > 0
        assert db.stats["commits"] == 3

    def test_excused_history_is_serializable(self, db):
        _false_positive_structure(db, "ssi-ro")
        report = check_serializable(db.history)
        assert report.serializable


class TestTruePositiveKept:
    def test_ssi_ro_still_aborts_a_real_cycle(self, db):
        """When the read-only transaction snapshots *after* T_out's
        commit, the cycle is real (R sees T_out but not the pivot) and
        ssi-ro must abort exactly like stock SSI."""
        fill(db, "t", {"x": 0, "y": 0})
        pivot = db.begin("ssi-ro")
        pivot.read("t", "y")
        t_out = db.begin("ssi-ro")
        t_out.write("t", "y", 1)
        t_out.commit()
        reader = db.begin("ssi-ro")
        reader.read("t", "x")
        assert reader.read("t", "y") == 1  # snapshot after T_out's commit
        reader.commit()
        with pytest.raises(TransactionAbortedError) as excinfo:
            pivot.write("t", "x", 1)
            pivot.commit()
        assert excinfo.value.reason == "unsafe"
        assert db.tracker.stats["excused"] == 0

    def test_no_excuse_for_an_updating_t_in(self, db):
        """A T_in that wrote anything is not read-only: no excuse."""
        fill(db, "t", {"x": 0, "y": 0, "z": 0})
        reader = db.begin("ssi-ro")
        reader.read("t", "x")
        reader.write("t", "z", 1)  # not read-only
        pivot = db.begin("ssi-ro")
        pivot.read("t", "y")
        t_out = db.begin("ssi-ro")
        t_out.write("t", "y", 1)
        t_out.commit()
        reader.commit()
        outcome = "commit"
        try:
            pivot.write("t", "x", 1)
            pivot.commit()
        except TransactionAbortedError as error:
            outcome = error.reason
        assert outcome == "unsafe"
        assert db.tracker.stats["excused"] == 0

    def test_no_excuse_when_t_in_identity_degraded(self, db):
        """Two distinct read-only readers degrade the pivot's inConflict
        slot to the self-reference; with the order lost, ssi-ro must
        assume the worst and abort.  (The first reader's edge may be
        excused while the slot is still precise — only the final outcome
        is pinned here.)"""
        fill(db, "t", {"x": 0, "y": 0})
        r1 = db.begin("ssi-ro")
        r1.read("t", "x")
        r2 = db.begin("ssi-ro")
        r2.read("t", "x")
        pivot = db.begin("ssi-ro")
        pivot.read("t", "y")
        t_out = db.begin("ssi-ro")
        t_out.write("t", "y", 1)
        t_out.commit()
        r1.commit()
        r2.commit()
        outcome = "commit"
        try:
            pivot.write("t", "x", 1)
            pivot.commit()
        except TransactionAbortedError as error:
            outcome = error.reason
        assert outcome == "unsafe"


class TestBasicTrackerDegradesToStockSSI:
    def test_boolean_slots_never_excuse(self, db_basic):
        """The basic tracker keeps no transaction references, so the
        excuse cannot prove anything: ssi-ro behaves as stock SSI."""
        assert _false_positive_structure(db_basic, "ssi-ro") == "unsafe"


class TestMixedSsiAndSsiRo:
    def test_excuse_applies_per_pivot_policy(self, db):
        """An ssi-ro pivot among stock-ssi peers is excused; the peers'
        level does not matter, only the pivot's."""
        fill(db, "t", {"x": 0, "y": 0})
        reader = db.begin("ssi")
        reader.read("t", "x")
        reader.read("t", "y")
        pivot = db.begin("ssi-ro")
        pivot.read("t", "y")
        t_out = db.begin("ssi")
        t_out.write("t", "y", 1)
        t_out.commit()
        reader.commit()
        pivot.write("t", "x", 1)
        pivot.commit()
        assert db.stats["commits"] == 3
        assert db.tracker.stats["excused"] > 0
        assert check_serializable(db.history).serializable
