"""Acceptance run for the read-only optimization.

On a read-mostly sibench variant, ``ssi-ro`` must abort strictly fewer
transactions than stock ``ssi`` on the same seed, while the MVSG oracle
certifies every committed history it produces.  The workload parameters
pin the regime where the optimization can act (see
:func:`repro.workloads.sibench.make_sibench_rmw`): a low multiprogramming
level keeps the pivot's ``inConflict`` reference precise, so the excuse
can prove the incoming transaction read-only.
"""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sgt.checker import check_serializable
from repro.sim.scheduler import SimConfig, Simulator
from repro.workloads.sibench import make_sibench_rmw

ITEMS = 20
QUERIES_PER_UPDATE = 2.0
MPL = 3
DURATION = 0.15
SEED = 5


def run(level, record_history=False):
    db = Database(EngineConfig(record_history=record_history))
    workload = make_sibench_rmw(
        items=ITEMS, queries_per_update=QUERIES_PER_UPDATE
    )
    workload.setup(db)
    Simulator(
        db, workload, level, MPL,
        SimConfig(duration=DURATION, warmup=0.0, seed=SEED),
    ).run()
    return db


@pytest.mark.slow
def test_read_only_opt_beats_stock_ssi_and_stays_serializable():
    stock = run("ssi")
    optimized = run("ssi-ro", record_history=True)

    stock_aborts = sum(dict(stock.stats["aborts"]).values())
    optimized_aborts = sum(dict(optimized.stats["aborts"]).values())

    # The optimization actually fired...
    assert optimized.tracker.stats["excused"] > 0
    assert stock.tracker.stats["excused"] == 0
    # ...and paid off: strictly fewer aborts on the identical seed.
    assert optimized_aborts < stock_aborts
    assert optimized.stats["commits"] >= stock.stats["commits"]

    # Every history the excuse lets through is still serializable.
    report = check_serializable(optimized.history)
    assert report.serializable
