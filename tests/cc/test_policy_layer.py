"""The pluggable CC-policy layer: registry, installation, dispatch."""

import pytest

from repro.cc import (
    CCPolicy,
    S2PLPolicy,
    SGTPolicy,
    SIPolicy,
    SSIPolicy,
    SSIReadOnlyOptPolicy,
    build_policies,
    registered_levels,
)
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.locking.modes import LockMode

from tests.conftest import fill


class TestRegistry:
    def test_every_isolation_level_has_a_policy(self):
        assert set(registered_levels()) == set(IsolationLevel)

    def test_build_policies_covers_every_level(self, db):
        assert set(db._policies) == set(IsolationLevel)
        for level, policy in db._policies.items():
            assert policy.level is level

    def test_policy_instances_are_per_database(self):
        db_a = Database(EngineConfig())
        db_b = Database(EngineConfig())
        for level in IsolationLevel:
            assert db_a._policies[level] is not db_b._policies[level]
        assert db_a.tracker is not db_b.tracker
        assert db_a.certifier is not db_b.certifier

    def test_expected_classes(self, db):
        assert isinstance(db._policies[IsolationLevel.SERIALIZABLE_2PL], S2PLPolicy)
        assert isinstance(db._policies[IsolationLevel.SNAPSHOT], SIPolicy)
        assert type(db._policies[IsolationLevel.SERIALIZABLE_SSI]) is SSIPolicy
        assert isinstance(
            db._policies[IsolationLevel.SERIALIZABLE_SSI_RO], SSIReadOnlyOptPolicy
        )
        assert isinstance(db._policies[IsolationLevel.SGT], SGTPolicy)


class TestInstallation:
    def test_ssi_policy_publishes_the_tracker(self, db):
        policy = db._policies[IsolationLevel.SERIALIZABLE_SSI]
        assert policy.tracker is db.tracker

    def test_ssi_ro_shares_the_ssi_tracker(self, db):
        """ssi and ssi-ro transactions must interoperate: one tracker."""
        ssi = db._policies[IsolationLevel.SERIALIZABLE_SSI]
        ro = db._policies[IsolationLevel.SERIALIZABLE_SSI_RO]
        assert ro.tracker is ssi.tracker is db.tracker

    def test_sgt_policy_publishes_the_certifier(self, db):
        policy = db._policies[IsolationLevel.SGT]
        assert policy.certifier is db.certifier

    def test_tracker_metrics_adopted(self, db):
        counters = db.metrics.snapshot()["counters"]
        assert counters["tracker"] == dict(db.tracker.stats)
        assert counters["sgt"] == dict(db.certifier.stats)


class TestPolicyBinding:
    def test_transaction_carries_its_policy(self, db):
        for level in IsolationLevel:
            txn = db.begin(level)
            assert txn.policy is db._policies[level]
            txn.abort()

    @pytest.mark.parametrize(
        "level,mode",
        [
            ("s2pl", LockMode.SHARED),
            ("ssi", LockMode.SIREAD),
            ("ssi-ro", LockMode.SIREAD),
            ("sgt", LockMode.SIREAD),
            ("si", None),
        ],
    )
    def test_read_lock_modes(self, db, level, mode):
        txn = db.begin(level)
        assert txn.policy.read_lock_mode(txn) is mode
        txn.abort()

    @pytest.mark.parametrize(
        "level,snapshots", [("s2pl", False), ("si", True), ("ssi", True)]
    )
    def test_uses_snapshots(self, db, level, snapshots):
        txn = db.begin(level)
        assert txn.policy.uses_snapshots is snapshots
        txn.abort()


class TestEdgeDispatch:
    def test_ssi_endpoints_record_in_the_tracker(self, db):
        fill(db, "t", {1: "a"})
        reader = db.begin("ssi")
        reader.read("t", 1)
        writer = db.begin("ssi")
        writer.write("t", 1, "b")
        assert db.tracker.stats["marked"] == 1
        assert reader.out_conflict is writer
        reader.abort()
        writer.abort()

    def test_ssi_and_ssi_ro_interoperate(self, db):
        """A mixed ssi/ssi-ro edge lands in the shared tracker, not in
        the mixed-edges-dropped bucket."""
        fill(db, "t", {1: "a"})
        reader = db.begin("ssi-ro")
        reader.read("t", 1)
        writer = db.begin("ssi")
        writer.write("t", 1, "b")
        assert db.tracker.stats["marked"] == 1
        assert db.stats["mixed_edges_dropped"] == 0
        reader.abort()
        writer.abort()

    def test_sgt_endpoint_wins_precedence(self, db):
        """An ssi reader / sgt writer edge goes to the certifier (the
        higher-precedence endpoint), not the SSI tracker."""
        fill(db, "t", {1: "a"})
        reader = db.begin("ssi")
        reader.read("t", 1)
        writer = db.begin("sgt")
        before = db.certifier.stats["edges"]
        writer.write("t", 1, "b")
        assert db.certifier.stats["edges"] == before + 1
        assert db.tracker.stats["marked"] == 0
        reader.abort()
        writer.abort()


class TestBasePolicyContract:
    def test_default_hooks_are_inert(self, db):
        policy = CCPolicy(db)
        txn = db.begin("si")
        assert policy.read_lock_mode(txn) is None
        assert policy.before_commit(txn) is None
        assert policy.handles_rw_edge(txn, txn) is False
        assert policy.excuses_unsafe(txn) is False
        assert policy.retain_read_locks(txn) is False
        assert policy.retain_record(txn, keep_siread=True) is True
        assert policy.may_cleanup(txn)
        txn.abort()

    def test_build_policies_rejects_unregistered_levels(self):
        # registered_levels drives build_policies; every Database build
        # must produce the full mapping (guards against a policy module
        # forgetting to self-register).
        db = Database(EngineConfig())
        assert set(build_policies(db)) == set(IsolationLevel)
