"""VersionChain unit tests: visibility, ordering, tombstones, pruning."""

import pytest

from repro.mvcc.version import TOMBSTONE, Version, VersionChain


def chain_of(*specs):
    """Build a chain from (value, commit_ts, creator) tuples, oldest first."""
    chain = VersionChain()
    for value, ts, creator in specs:
        chain.install(Version(value=value, commit_ts=ts, creator_id=creator))
    return chain


class TestInstall:
    def test_install_orders_newest_first(self):
        chain = chain_of(("a", 1, 10), ("b", 5, 11), ("c", 9, 12))
        assert [v.commit_ts for v in chain] == [9, 5, 1]

    def test_out_of_order_install_rejected(self):
        chain = chain_of(("a", 5, 1))
        with pytest.raises(ValueError):
            chain.install(Version("b", 5, 2))
        with pytest.raises(ValueError):
            chain.install(Version("b", 3, 2))


class TestVisibility:
    def test_visible_picks_newest_at_or_before(self):
        chain = chain_of(("a", 1, 1), ("b", 5, 2), ("c", 9, 3))
        assert chain.visible(0) is None
        assert chain.visible(1).value == "a"
        assert chain.visible(4).value == "a"
        assert chain.visible(5).value == "b"
        assert chain.visible(100).value == "c"

    def test_visible_tombstone_is_returned_not_hidden(self):
        chain = chain_of(("a", 1, 1), (TOMBSTONE, 5, 2))
        version = chain.visible(6)
        assert version is not None and version.is_tombstone
        assert chain.visible(3).value == "a"

    def test_newer_than_yields_ignored_versions(self):
        chain = chain_of(("a", 1, 1), ("b", 5, 2), ("c", 9, 3))
        assert [v.commit_ts for v in chain.newer_than(1)] == [9, 5]
        assert [v.commit_ts for v in chain.newer_than(9)] == []
        assert [v.commit_ts for v in chain.newer_than(0)] == [9, 5, 1]

    def test_latest(self):
        assert VersionChain().latest() is None
        chain = chain_of(("a", 1, 1), ("b", 5, 2))
        assert chain.latest().value == "b"


class TestPrune:
    def test_prune_keeps_visible_version(self):
        chain = chain_of(("a", 1, 1), ("b", 5, 2), ("c", 9, 3))
        removed = chain.prune(horizon_ts=6)
        assert removed == 1  # "a" dropped; "b" still visible at 6
        assert chain.visible(6).value == "b"
        assert chain.visible(100).value == "c"

    def test_prune_keeps_everything_when_horizon_precedes_all(self):
        chain = chain_of(("a", 5, 1), ("b", 9, 2))
        assert chain.prune(horizon_ts=1) == 0
        assert len(chain) == 2

    def test_prune_reclaims_sole_tombstone(self):
        chain = chain_of(("a", 1, 1), (TOMBSTONE, 5, 2))
        removed = chain.prune(horizon_ts=10)
        # "a" removed, then the tombstone itself (nothing left to shadow).
        assert removed == 2
        assert len(chain) == 0

    def test_prune_keeps_tombstone_while_older_version_readable(self):
        chain = chain_of(("a", 1, 1), (TOMBSTONE, 5, 2))
        chain.prune(horizon_ts=3)  # a still visible at 3
        assert len(chain) == 2


def test_version_is_tombstone_flag():
    assert Version(TOMBSTONE, 1, 1).is_tombstone
    assert not Version(None, 1, 1).is_tombstone
    assert not Version(0, 1, 1).is_tombstone
