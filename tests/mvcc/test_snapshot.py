"""Snapshot (read view) unit tests."""

from repro.mvcc.snapshot import Snapshot
from repro.mvcc.version import TOMBSTONE, Version, VersionChain


def make_chain():
    chain = VersionChain()
    chain.install(Version("v1", 2, 1))
    chain.install(Version("v2", 7, 2))
    return chain


def test_snapshot_sees_versions_at_or_before_read_ts():
    chain = make_chain()
    assert Snapshot(1).visible(chain) is None
    assert Snapshot(2).visible(chain).value == "v1"
    assert Snapshot(6).visible(chain).value == "v1"
    assert Snapshot(7).visible(chain).value == "v2"


def test_ignored_versions_lists_newer_commits():
    chain = make_chain()
    assert [v.value for v in Snapshot(2).ignored_versions(chain)] == ["v2"]
    assert Snapshot(7).ignored_versions(chain) == []


def test_sees_commit_ts():
    snapshot = Snapshot(5)
    assert snapshot.sees(5)
    assert snapshot.sees(1)
    assert not snapshot.sees(6)


def test_snapshot_over_tombstone():
    chain = make_chain()
    chain.install(Version(TOMBSTONE, 9, 3))
    visible = Snapshot(10).visible(chain)
    assert visible.is_tombstone
    assert Snapshot(8).visible(chain).value == "v2"
