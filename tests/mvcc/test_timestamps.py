"""Logical clock unit tests."""

import threading

from repro.mvcc.timestamps import LogicalClock


def test_starts_at_zero():
    clock = LogicalClock()
    assert clock.now() == 0


def test_next_is_strictly_increasing():
    clock = LogicalClock()
    stamps = [clock.next() for _ in range(100)]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == 100


def test_now_reflects_last_issued():
    clock = LogicalClock()
    issued = clock.next()
    assert clock.now() == issued
    issued2 = clock.next()
    assert clock.now() == issued2 > issued


def test_thread_safety_no_duplicates():
    clock = LogicalClock()
    results: list[int] = []
    lock = threading.Lock()

    def worker():
        local = [clock.next() for _ in range(500)]
        with lock:
            results.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == len(set(results)) == 4000


def test_repr_mentions_now():
    clock = LogicalClock()
    clock.next()
    assert "now=1" in repr(clock)
