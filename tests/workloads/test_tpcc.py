"""TPC-C workload tests: schema, loader, and the five transactions."""

import random

import pytest

from repro import Database, EngineConfig
from repro.sim.direct import run_program
from repro.workloads import tpcc
from repro.workloads.tpcc import (
    TpccScale,
    delivery,
    last_name_for,
    new_order,
    order_status,
    payment,
    setup_tpcc,
    stock_level,
)


@pytest.fixture(scope="module")
def db():
    database = Database(EngineConfig())
    setup_tpcc(database, TpccScale.tiny(1))
    return database


class TestScale:
    def test_standard_vs_tiny_ratios(self):
        std = TpccScale.standard()
        tiny = TpccScale.tiny()
        # the paper's ratios: customers / 30, items / 100 (5.3.6)
        assert std.customers_per_district // 3 == tiny.customers_per_district
        assert std.items // 10 == tiny.items

    def test_approx_rows(self):
        rows = TpccScale(warehouses=2, customers_per_district=100,
                         items=1000, initial_orders_per_district=30).approx_rows()
        assert rows["warehouse"] == 2
        assert rows["district"] == 20
        assert rows["customer"] == 2000
        assert rows["stock"] == 2000
        assert rows["orders"] == 600

    def test_last_name_syllables(self):
        assert last_name_for(0) == "BARBARBAR"
        assert last_name_for(371) == "PRICALLYOUGHT"  # digits 3,7,1


class TestLoader:
    def test_tables_populated(self, db):
        scale = TpccScale.tiny(1)
        assert len(db.table(tpcc.WAREHOUSE)) == 1
        assert len(db.table(tpcc.DISTRICT)) == 10
        assert len(db.table(tpcc.CUSTOMER)) == 1000
        assert len(db.table(tpcc.ITEM)) == scale.items
        assert len(db.table(tpcc.STOCK)) == scale.items
        assert len(db.table(tpcc.NEW_ORDER)) == 300

    def test_district_next_o_id_consistent_with_orders(self, db):
        txn = db.begin("si")
        district = txn.read(tpcc.DISTRICT, (1, 1))
        orders = txn.scan(tpcc.ORDERS, (1, 1, 0), (1, 1, 1 << 30))
        assert district["next_o_id"] == len(orders) + 1
        txn.commit()


class TestTransactions:
    def test_new_order_places_order(self, db):
        rng = random.Random(0)
        scale = TpccScale.tiny(1)
        before = len(db.table(tpcc.NEW_ORDER))
        credit = run_program(db, new_order(rng, scale, 1))
        assert credit in ("GC", "BC")
        assert len(db.table(tpcc.NEW_ORDER)) == before + 1

    def test_payment_updates_balances(self, db):
        rng = random.Random(1)
        scale = TpccScale.tiny(1)
        txn = db.begin("si")
        w_before = txn.read(tpcc.WAREHOUSE, 1)["ytd"]
        txn.commit()
        run_program(db, payment(rng, scale, 1))
        txn = db.begin("si")
        assert txn.read(tpcc.WAREHOUSE, 1)["ytd"] > w_before
        txn.commit()

    def test_payment_skip_ytd_leaves_warehouse_untouched(self, db):
        rng = random.Random(2)
        scale = TpccScale.tiny(1)
        txn = db.begin("si")
        w_before = txn.read(tpcc.WAREHOUSE, 1)["ytd"]
        txn.commit()
        run_program(db, payment(rng, scale, 1, skip_ytd=True))
        txn = db.begin("si")
        assert txn.read(tpcc.WAREHOUSE, 1)["ytd"] == w_before
        txn.commit()

    def test_order_status_reads_latest_order(self, db):
        rng = random.Random(3)
        scale = TpccScale.tiny(1)
        status = run_program(db, order_status(rng, scale, 1))
        assert status is None or status["lines"] > 0

    def test_delivery_consumes_new_order_queue(self, db):
        rng = random.Random(4)
        scale = TpccScale.tiny(1)
        before = len(db.table(tpcc.NEW_ORDER))
        # NEW_ORDER keys remain in the tree as tombstones; count visible.
        txn = db.begin("si")
        visible_before = len(txn.scan(tpcc.NEW_ORDER))
        txn.commit()
        result = run_program(db, delivery(rng, scale, 1))
        txn = db.begin("si")
        visible_after = len(txn.scan(tpcc.NEW_ORDER))
        txn.commit()
        if result == "DLVY2":
            assert visible_after == visible_before - 1
        else:
            assert visible_after == visible_before

    def test_delivery_pays_customer_balance(self, db):
        rng = random.Random(5)
        scale = TpccScale.tiny(1)
        # run until a DLVY2 happens
        for _ in range(30):
            if run_program(db, delivery(rng, scale, 1)) == "DLVY2":
                break
        else:
            pytest.fail("no deliverable order found")

    def test_stock_level_counts_low_stock(self, db):
        rng = random.Random(6)
        scale = TpccScale.tiny(1)
        low = run_program(db, stock_level(rng, scale, 1, threshold=101))
        assert low > 0  # every stock row is below 101
        none_low = run_program(db, stock_level(rng, scale, 1, threshold=0))
        assert none_low == 0
