"""sibench workload tests (Section 5.2)."""

import random

import pytest

from repro import Database, EngineConfig
from repro.sim.direct import run_program
from repro.sim.scheduler import SimConfig, run_simulation
from repro.workloads.sibench import make_sibench, query, setup_sibench, update


@pytest.fixture
def db():
    database = Database(EngineConfig())
    setup_sibench(database, items=10)
    return database


def test_query_returns_min_value_id(db):
    run_program(db, update(3))
    run_program(db, update(3))
    run_program(db, update(7))
    # all values 0 except 3 (=2) and 7 (=1): min id with min value is 0
    assert run_program(db, query()) == 0
    # drain the zeros
    for item in (0, 1, 2, 4, 5, 6, 8, 9):
        for _ in range(3):
            run_program(db, update(item))
    assert run_program(db, query()) == 7


def test_update_increments(db):
    run_program(db, update(5))
    check = db.begin("si")
    assert check.read("sitest", 5) == 1
    check.commit()


def test_mix_ratio_respected():
    workload = make_sibench(items=10, queries_per_update=10)
    rng = random.Random(0)
    names = [workload.next_transaction(rng)[0] for _ in range(800)]
    ratio = names.count("query") / max(1, names.count("update"))
    assert 6 < ratio < 16


def test_no_rollbacks_in_sibench():
    """Section 5.2: no deadlocks or write-skew are possible; the paper
    verifies no transactions roll back at any isolation level."""
    workload = make_sibench(items=10)
    for level in ("si", "ssi", "s2pl"):
        result = run_simulation(
            workload, level, 8,
            sim_config=SimConfig(duration=0.15, warmup=0.0),
        )
        assert result.cc_aborts == 0, (level, result.aborts)
        assert result.commits > 0


def test_query_cost_scales_with_items():
    slow = run_simulation(
        make_sibench(items=400), "si", 1,
        sim_config=SimConfig(duration=0.15, warmup=0.0),
    )
    fast = run_simulation(
        make_sibench(items=10), "si", 1,
        sim_config=SimConfig(duration=0.15, warmup=0.0),
    )
    assert fast.throughput > slow.throughput * 2
