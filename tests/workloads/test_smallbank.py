"""SmallBank workload tests: program semantics and anomaly behaviour."""

import random

import pytest

from repro import Database, EngineConfig
from repro.errors import ConstraintError, TransactionAbortedError
from repro.sim.direct import run_program
from repro.workloads import smallbank
from repro.workloads.smallbank import (
    amalgamate,
    balance,
    customer_name,
    deposit_checking,
    make_smallbank,
    setup_smallbank,
    transact_saving,
    write_check,
)


@pytest.fixture
def db():
    database = Database(EngineConfig(record_history=True))
    setup_smallbank(database, customers=10)
    return database


NAME = customer_name(3)


class TestPrograms:
    def test_balance_sums_accounts(self, db):
        assert run_program(db, balance(NAME)) == 2000.0

    def test_deposit_checking(self, db):
        run_program(db, deposit_checking(NAME, 50.0))
        assert run_program(db, balance(NAME)) == 2050.0

    def test_deposit_negative_rolls_back(self, db):
        with pytest.raises(ConstraintError):
            run_program(db, deposit_checking(NAME, -5.0))
        assert run_program(db, balance(NAME)) == 2000.0

    def test_transact_saving_withdrawal_and_overdraft_rule(self, db):
        run_program(db, transact_saving(NAME, -1000.0))
        with pytest.raises(ConstraintError):
            run_program(db, transact_saving(NAME, -1.0))
        assert run_program(db, balance(NAME)) == 1000.0

    def test_unknown_customer_rolls_back(self, db):
        with pytest.raises(ConstraintError):
            run_program(db, transact_saving("nobody", 10.0))

    def test_amalgamate_moves_funds(self, db):
        other = customer_name(7)
        run_program(db, amalgamate(NAME, other))
        assert run_program(db, balance(NAME)) == 0.0
        assert run_program(db, balance(other)) == 4000.0

    def test_write_check_normal(self, db):
        run_program(db, write_check(NAME, 100.0))
        assert run_program(db, balance(NAME)) == 1900.0

    def test_write_check_overdraft_penalty(self, db):
        run_program(db, write_check(NAME, 2500.0))
        # checking drops by 2500 + 1 penalty
        assert run_program(db, balance(NAME)) == 2000.0 - 2501.0


class TestAnomaly:
    def _race(self, db, variant):
        """Bal concurrent with WC and TS on one customer — the SmallBank
        dangerous structure.  Returns (statuses, final_balance_seen)."""
        from repro.sim.interleave import run_interleaving

        def setup(database):
            setup_smallbank(database, customers=4)

        def prog_wc():
            return smallbank.write_check_variant(NAME_0, 1500.0, variant)

        def prog_ts():
            return smallbank.transact_saving_variant(NAME_0, -600.0, variant)

        NAME_0 = customer_name(0)
        statuses = []
        # One representative dangerous interleaving: WC reads, TS runs
        # fully, WC writes.
        outcome = run_interleaving(
            setup,
            [prog_wc, prog_ts],
            order=[0, 0, 0, 1, 1, 1, 1, 0, 0],
            isolation="ssi",
        )
        return outcome

    def test_wc_ts_race_never_loses_overdraft_decision_at_ssi(self, db):
        outcome = self._race(db, "plain")
        # At least one of the two conflicting update programs aborted, or
        # the interleaving was serializable anyway.
        from repro.sgt.checker import check_serializable
        assert check_serializable(outcome.db.history).serializable


class TestWorkloadFactory:
    def test_setup_populates_tables(self):
        workload = make_smallbank(customers=25)
        db = Database(EngineConfig())
        workload.setup(db)
        assert len(db.table(smallbank.ACCOUNT)) == 25
        assert len(db.table(smallbank.SAVING)) == 25
        assert len(db.table(smallbank.CONFLICT)) == 25

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            make_smallbank(variant="bogus")

    def test_single_op_programs_complete(self):
        workload = make_smallbank(customers=10)
        db = Database(EngineConfig())
        workload.setup(db)
        rng = random.Random(0)
        for _round in range(30):
            _name, program = workload.next_transaction(rng)
            try:
                run_program(db, program, isolation="ssi")
            except (ConstraintError, TransactionAbortedError):
                pass
        assert db.stats["commits"] > 0

    def test_compound_programs_run_ten_ops(self):
        workload = make_smallbank(customers=10, ops_per_txn=10)
        db = Database(EngineConfig())
        workload.setup(db)
        rng = random.Random(1)
        reads_before = db.stats["reads"]
        _name, program = workload.next_transaction(rng)
        try:
            run_program(db, program, isolation="si")
        except (ConstraintError, TransactionAbortedError):
            pass
        # ten SmallBank ops touch many more rows than a single op
        assert db.stats["reads"] - reads_before >= 10

    @pytest.mark.parametrize(
        "variant", ["materialize_wt", "promote_wt", "materialize_bw", "promote_bw"]
    )
    def test_variant_workloads_run(self, variant):
        workload = make_smallbank(customers=10, variant=variant)
        db = Database(EngineConfig())
        workload.setup(db)
        rng = random.Random(2)
        committed = 0
        for _round in range(40):
            _name, program = workload.next_transaction(rng)
            try:
                run_program(db, program, isolation="si")
                committed += 1
            except (ConstraintError, TransactionAbortedError):
                pass
        assert committed > 0


class TestMoneyConservation:
    def test_total_money_conserved_under_ssi(self):
        """DC/TS inject money; WC removes it; Amg/Bal conserve.  Run a
        sequential mix and check the books balance exactly."""
        db = Database(EngineConfig())
        setup_smallbank(db, customers=8)
        rng = random.Random(3)
        delta = 0.0
        for _round in range(60):
            kind = rng.randrange(4)
            name = customer_name(rng.randrange(8))
            amount = float(rng.randint(1, 50))
            try:
                if kind == 0:
                    run_program(db, deposit_checking(name, amount))
                    delta += amount
                elif kind == 1:
                    run_program(db, transact_saving(name, amount))
                    delta += amount
                elif kind == 2:
                    other = customer_name(rng.randrange(8))
                    if other != name:
                        run_program(db, amalgamate(name, other))
                else:
                    before = run_program(db, balance(name))
                    run_program(db, write_check(name, amount))
                    delta -= amount + (1.0 if before < amount else 0.0)
            except ConstraintError:
                pass
        total = sum(
            run_program(db, balance(customer_name(i))) for i in range(8)
        )
        assert total == pytest.approx(8 * 2000.0 + delta)
