"""TPC-C++ tests: the Credit Check transaction and the Example 5 anomaly."""

import random

import pytest

from repro import Database, EngineConfig
from repro.errors import TransactionAbortedError
from repro.sim.direct import run_program
from repro.workloads import tpcc
from repro.workloads.tpcc import TpccScale, setup_tpcc
from repro.workloads.tpccpp import (
    STANDARD_WEIGHTS,
    credit_check,
    make_stock_level_mix,
    make_tpccpp,
)


@pytest.fixture
def db():
    database = Database(EngineConfig(record_history=True))
    setup_tpcc(database, TpccScale(warehouses=1, customers_per_district=5,
                                   items=50, initial_orders_per_district=5))
    return database


class FixedRng(random.Random):
    """Random that pins district/customer choices for determinism."""

    def __init__(self, d_id, c_id):
        super().__init__(0)
        self._fixed = [d_id, c_id]

    def randint(self, lo, hi):
        if self._fixed:
            return self._fixed.pop(0)
        return super().randint(lo, hi)


class TestCreditCheck:
    def test_good_credit_when_under_limit(self, db):
        scale = TpccScale(1, 5, 50, 5)
        credit = run_program(db, credit_check(FixedRng(1, 1), scale, 1))
        # initial balance -10 plus a handful of undelivered orders, limit 50k
        assert credit == "GC"
        txn = db.begin("si")
        assert txn.read(tpcc.CUSTOMER, (1, 1, 1))["credit"] == "GC"
        txn.commit()

    def test_bad_credit_when_over_limit(self, db):
        scale = TpccScale(1, 5, 50, 5)
        # Force the customer's balance over the limit first.
        txn = db.begin("si")
        customer = txn.read(tpcc.CUSTOMER, (1, 1, 2))
        txn.write(tpcc.CUSTOMER, (1, 1, 2), {**customer, "balance": 60_000.0})
        txn.commit()
        credit = run_program(db, credit_check(FixedRng(1, 2), scale, 1))
        assert credit == "BC"

    def test_counts_only_undelivered_orders(self, db):
        """Orders removed from NEW_ORDER must not count toward the
        outstanding total."""
        scale = TpccScale(1, 5, 50, 5)
        # deliver everything in district 1
        for _ in range(10):
            run_program(db, tpcc.delivery(FixedRng(1, 1), scale, 1))
        txn = db.begin("si")
        pending = txn.scan(tpcc.NEW_ORDER, (1, 1, 0), (1, 1, 1 << 30))
        txn.commit()
        assert pending == []


class TestExample5Anomaly:
    """The paper's Example 5: a credit check racing a payment and a new
    order.  Under SI the check writes BC from stale data after the
    customer saw GC; under SSI one of the participants aborts."""

    def _script(self, isolation):
        db = Database(EngineConfig(record_history=True))
        scale = TpccScale(1, 3, 20, 2)
        setup_tpcc(db, scale)
        w, d, c = 1, 1, 1

        # Setup: balance near the credit limit.
        txn = db.begin("si")
        customer = txn.read(tpcc.CUSTOMER, (w, d, c))
        txn.write(tpcc.CUSTOMER, (w, d, c),
                  {**customer, "balance": 49_900.0, "credit": "GC",
                   "credit_lim": 50_000.0})
        txn.commit()

        results = {"events": []}
        ccheck = db.begin(isolation)
        pay = db.begin(isolation)
        try:
            # Credit check reads the stale balance...
            cust = db.read(ccheck, tpcc.CUSTOMER, (w, d, c))
            results["events"].append(("ccheck-read", cust["balance"]))
            # ...while a payment brings the balance down and commits.
            paid = db.read_for_update(pay, tpcc.CUSTOMER, (w, d, c))
            db.write(pay, tpcc.CUSTOMER, (w, d, c),
                     {**paid, "balance": paid["balance"] - 49_000.0})
            db.commit(pay)
            results["events"].append(("pay-commit", None))
            # A new order checks the credit field (sees GC)...
            newo = db.begin(isolation)
            shown = db.read(newo, tpcc.CUSTOMER, (w, d, c))["credit"]
            db.write(newo, tpcc.ORDERS, (w, d, 999),
                     {"c_id": c, "carrier_id": None, "ol_cnt": 0, "entry_d": 0})
            db.commit(newo)
            results["events"].append(("newo-credit-shown", shown))
            # ...and the credit check commits its stale BC verdict.
            current = db.read_for_update(ccheck, tpcc.CUSTOMER, (w, d, c))
            db.write(ccheck, tpcc.CUSTOMER, (w, d, c), {**current, "credit": "BC"})
            db.commit(ccheck)
            results["events"].append(("ccheck-commit", None))
            results["aborted"] = None
        except TransactionAbortedError as error:
            results["aborted"] = error.reason
        results["db"] = db
        return results

    def test_si_permits_the_anomaly(self):
        results = self._script("si")
        # Everything commits at SI... except the ccheck's own locking
        # read conflicts (first-committer-wins on the customer row).
        # The anomaly requires column-level versioning; with row-level
        # rows the FCW rule fires instead — which is exactly the paper's
        # Section 5.3.3 point about partitioning.  Either the anomaly
        # commits or FCW aborted the checker.
        assert results["aborted"] in (None, "conflict")

    def test_ssi_prevents_the_anomaly(self):
        results = self._script("ssi")
        if results["aborted"] is None:
            # If all three committed, the history must be serializable.
            from repro.sgt.checker import check_serializable
            assert check_serializable(results["db"].history).serializable
        else:
            assert results["aborted"] in ("unsafe", "conflict")


class TestMixes:
    def test_standard_weights_sum(self):
        assert sum(STANDARD_WEIGHTS.values()) == pytest.approx(98.0)

    def test_workload_runs_all_transaction_types(self):
        workload = make_tpccpp(TpccScale(1, 10, 100, 5))
        db = Database(EngineConfig())
        workload.setup(db)
        rng = random.Random(0)
        seen = set()
        for _round in range(150):
            name, program = workload.next_transaction(rng)
            seen.add(name)
            try:
                run_program(db, program, isolation="si")
            except TransactionAbortedError:
                pass
        assert {"NEWO", "PAY"} <= seen
        assert len(seen) >= 5

    def test_stock_level_mix_composition(self):
        workload = make_stock_level_mix(TpccScale(1, 10, 100, 5))
        rng = random.Random(0)
        names = [workload.next_transaction(rng)[0] for _ in range(600)]
        assert set(names) == {"NEWO", "SLEV"}
        assert names.count("SLEV") > names.count("NEWO") * 5

    def test_workload_labels(self):
        assert "tiny" in make_tpccpp(TpccScale.tiny(10)).name
        assert "noytd" in make_tpccpp(TpccScale.tiny(1), skip_ytd=True).name
        assert "slev" in make_stock_level_mix().name
