"""Session layer: N sessions : M threads, completion-driven waits."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.config import DeadlockMode, EngineConfig
from repro.engine.database import Database
from repro.errors import (
    KeyNotFoundError,
    LockTimeoutError,
    TransactionAbortedError,
    TransactionStateError,
)
from repro.exec import run_session_stress
from repro.session import Session, SessionClosedError, SessionScheduler
from repro.workloads import make_sibench, make_smallbank

from tests.conftest import fill


@pytest.fixture
def sched(db):
    scheduler = SessionScheduler(db, workers=2)
    yield scheduler
    scheduler.shutdown()


def collect(session: Session, method: str, *args, **kwargs):
    """Submit and return (result, error) without raising."""
    done = threading.Event()
    box = {}

    def on_done(result, error):
        box["result"], box["error"] = result, error
        done.set()

    getattr(session, method)(*args, on_done=on_done, **kwargs)
    assert done.wait(timeout=10), f"{method} never completed"
    return box["result"], box["error"]


class TestSessionBasics:
    def test_full_engine_surface(self, db, sched):
        fill(db, "t", {1: "a", 2: "b"})
        session = sched.session()
        assert isinstance(session.call("begin", "ssi"), int)
        assert session.call("read", "t", 1) == "a"
        assert session.call("get", "t", 99, "dflt") == "dflt"
        session.call("write", "t", 1, "A")
        session.call("insert", "t", 3, "c")
        session.call("delete", "t", 2)
        assert session.call("scan", "t") == [(1, "A"), (3, "c")]
        session.call("commit")
        assert session.txn is None
        # engine state really committed
        check = db.begin("si")
        assert check.read("t", 1) == "A"
        check.commit()

    def test_errors_are_delivered_not_raised_in_worker(self, db, sched):
        fill(db, "t", {1: "a"})
        session = sched.session()
        session.call("begin", "ssi")
        result, error = collect(session, "read", "t", 404)
        assert isinstance(error, KeyNotFoundError)
        # the session survives a failed op
        assert session.call("read", "t", 1) == "a"
        session.call("abort")

    def test_op_without_txn_fails(self, db, sched):
        session = sched.session()
        result, error = collect(session, "read", "t", 1)
        assert isinstance(error, TransactionStateError)

    def test_close_rejects_future_work(self, db, sched):
        session = sched.session()
        session.call("begin", "ssi")
        session.call("close")
        result, error = collect(session, "begin", "ssi")
        assert isinstance(error, SessionClosedError)
        assert sched.open_sessions == 0

    def test_read_only_session_surface(self, db, sched):
        fill(db, "t", {1: "a"})
        session = sched.session()
        session.call("begin", "ssi", True)  # read_only
        assert session.call("read", "t", 1) == "a"
        result, error = collect(session, "write", "t", 1, "x")
        assert isinstance(error, TransactionStateError)
        session.call("commit")


class TestSuspension:
    def test_blocked_session_frees_its_worker(self, db):
        """Two sessions, ONE worker: with thread-blocking waits the
        second session could never run while the first is blocked —
        suspension is what makes 1024-connections-on-8-threads work."""
        scheduler = SessionScheduler(db, workers=1)
        try:
            fill(db, "t", {"x": 0, "y": 0})
            blocker = scheduler.session()
            other = scheduler.session()
            blocker.call("begin", "s2pl")
            other.call("begin", "s2pl")
            other.call("read_for_update", "t", "x")  # exclusive on x

            woke = {}
            resumed = threading.Event()
            blocker.read(
                "t", "x",
                on_done=lambda r, e: (woke.update(r=r, e=e), resumed.set()),
            )
            deadline = time.monotonic() + 5
            while scheduler.suspended_sessions != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            assert not resumed.is_set()
            # the single worker is free: `other` keeps making progress
            other.call("write", "t", "y", 7)
            assert other.call("read", "t", "y") == 7
            other.call("commit")  # releases x -> blocker resumes
            assert resumed.wait(timeout=10)
            assert woke["e"] is None and woke["r"] == 0
            blocker.call("commit")
        finally:
            scheduler.shutdown()

    def test_session_wait_metrics(self, db):
        scheduler = SessionScheduler(db, workers=1)
        try:
            fill(db, "t", {"x": 0})
            holder, waiter = scheduler.session(), scheduler.session()
            holder.call("begin", "s2pl")
            holder.call("read_for_update", "t", "x")
            waiter.call("begin", "s2pl")
            resumed = threading.Event()
            waiter.read("t", "x", on_done=lambda r, e: resumed.set())
            deadline = time.monotonic() + 5
            while scheduler.suspended_sessions != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            snap = db.metrics.snapshot()
            assert snap["gauges"]["sessions_open"] == 2
            assert snap["gauges"]["sessions_suspended"] == 1
            holder.call("commit")
            assert resumed.wait(timeout=10)
            waiter.call("commit")
            snap = db.metrics.snapshot()
            assert snap["histograms"]["session_wait_time"]["count"] >= 1
        finally:
            scheduler.shutdown()

    def test_interrupt_wakes_suspended_lock_wait(self, db):
        scheduler = SessionScheduler(db, workers=1)
        try:
            fill(db, "t", {"x": 0})
            holder, waiter = scheduler.session(), scheduler.session()
            holder.call("begin", "s2pl")
            holder.call("read_for_update", "t", "x")
            waiter.call("begin", "s2pl")
            box = {}
            resumed = threading.Event()
            waiter.read("t", "x",
                        on_done=lambda r, e: (box.update(e=e), resumed.set()))
            deadline = time.monotonic() + 5
            while scheduler.suspended_sessions != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            waiter.interrupt()
            assert resumed.wait(timeout=10)
            assert isinstance(box["e"], TransactionAbortedError)
            assert waiter.txn is None
            holder.call("commit")
            # the interrupted waiter left nothing queued in the lock table
            assert len(db.locks._waiting) == 0
        finally:
            scheduler.shutdown()


class TestNoPolling:
    def test_session_wait_resolves_without_polling(self, db):
        """Session-mode variant of the no-poll regression: the default
        config (no lock timeout, immediate deadlocks) must start no tick
        thread and never consult poll_waiters on the wait path."""
        assert db.needs_wait_polling is False
        polls = []
        real_poll = db.poll_waiters
        db.poll_waiters = lambda: polls.append(1) or real_poll()
        scheduler = SessionScheduler(db, workers=1)
        try:
            assert scheduler._ticker is None  # nothing to poll for
            fill(db, "t", {"x": 0})
            holder, waiter = scheduler.session(), scheduler.session()
            holder.call("begin", "s2pl")
            holder.call("read_for_update", "t", "x")
            waiter.call("begin", "s2pl")
            resumed = threading.Event()
            box = {}
            waiter.read("t", "x",
                        on_done=lambda r, e: (box.update(r=r), resumed.set()))
            deadline = time.monotonic() + 5
            while scheduler.suspended_sessions != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            holder.call("write", "t", "x", 5)
            holder.call("commit")
            assert resumed.wait(timeout=10)
            assert box["r"] == 5
            waiter.call("commit")
            assert polls == []
        finally:
            scheduler.shutdown()
            db.poll_waiters = real_poll

    def test_lock_timeout_cancels_suspended_session(self):
        db = Database(EngineConfig(lock_timeout=0.05))
        scheduler = SessionScheduler(db, workers=1)
        try:
            assert scheduler._ticker is not None
            fill(db, "t", {"x": 0})
            holder, waiter = scheduler.session(), scheduler.session()
            holder.call("begin", "s2pl")
            holder.call("read_for_update", "t", "x")
            waiter.call("begin", "s2pl")
            box = {}
            resumed = threading.Event()
            waiter.read("t", "x",
                        on_done=lambda r, e: (box.update(e=e), resumed.set()))
            assert resumed.wait(timeout=10)
            assert isinstance(box["e"], LockTimeoutError)
            holder.call("abort")
        finally:
            scheduler.shutdown()

    def test_periodic_mode_sweeps_from_the_ticker(self):
        """PERIODIC deadlock detection in session mode: the scheduler's
        tick thread must find and break the cycle — no client thread
        exists to poll for it."""
        db = Database(EngineConfig(deadlock_mode=DeadlockMode.PERIODIC))
        scheduler = SessionScheduler(db, workers=2)
        try:
            assert scheduler._ticker is not None
            fill(db, "t", {"x": 0, "y": 0})
            s1, s2 = scheduler.session(), scheduler.session()
            s1.call("begin", "s2pl")
            s2.call("begin", "s2pl")
            s1.call("read_for_update", "t", "x")
            s2.call("read_for_update", "t", "y")
            outcomes = {}
            done1, done2 = threading.Event(), threading.Event()
            s1.read_for_update(
                "t", "y", on_done=lambda r, e: (outcomes.update(e1=e), done1.set()))
            s2.read_for_update(
                "t", "x", on_done=lambda r, e: (outcomes.update(e2=e), done2.set()))
            assert done1.wait(timeout=10) and done2.wait(timeout=10)
            errors = [outcomes["e1"], outcomes["e2"]]
            # exactly one side is the deadlock victim
            assert sum(1 for e in errors if e is not None) == 1
            for session in (s1, s2):
                if session.txn is not None:
                    session.call("abort")
        finally:
            scheduler.shutdown()


class TestDeferrableSessions:
    def test_deferrable_begin_suspends_until_safe(self, db):
        """A deferrable session begin must suspend — not park a worker —
        until the SafeSnapshotMonitor fires the safe verdict."""
        scheduler = SessionScheduler(db, workers=1)
        try:
            fill(db, "t", {1: "a"})
            writer = db.begin("ssi")
            writer.read("t", 1)

            ro = scheduler.session()
            box = {}
            begun = threading.Event()
            ro.begin("ssi", deferrable=True,
                     on_done=lambda r, e: (box.update(r=r, e=e), begun.set()))
            deadline = time.monotonic() + 5
            while scheduler.suspended_sessions != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            assert not begun.is_set()
            # the single worker is NOT burned by the deferrable wait:
            other = scheduler.session()
            other.call("begin", "si")
            assert other.call("read", "t", 1) == "a"
            other.call("commit")
            # harmless commit -> watch set drains -> safe verdict
            writer.write("t", 1, "w")
            writer.commit()
            assert begun.wait(timeout=10)
            assert box["e"] is None
            assert ro.txn.snapshot_safe is True
            assert ro.call("read", "t", 1) == "a"  # snapshot predates commit
            ro.call("commit")
        finally:
            scheduler.shutdown()

    def test_unsafe_verdict_is_permanent_and_retakes_snapshot(self, db):
        """An unsafe verdict can never flip back: the session must
        discard that snapshot, take a fresh one, and only then begin."""
        fill(db, "t", {"x": 0, "y": 0, "z": 0})
        t_out = db.begin("ssi")
        pivot = db.begin("ssi")
        pivot.read("t", "x")
        t_out.write("t", "x", 1)
        t_out.commit()  # pivot -rw-> t_out, t_out committed early

        scheduler = SessionScheduler(db, workers=1)
        try:
            ro = scheduler.session()
            box = {}
            begun = threading.Event()
            ro.begin("ssi", deferrable=True,
                     on_done=lambda r, e: (box.update(r=r, e=e), begun.set()))
            deadline = time.monotonic() + 5
            while scheduler.suspended_sessions != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            assert not begun.is_set()
            pivot.write("t", "z", 1)
            pivot.commit()  # out-edge to old committed t_out: UNSAFE verdict
            # the unsafe verdict resumes the session, which retakes a
            # snapshot; with no rw transaction left it is immediately safe
            assert begun.wait(timeout=10)
            assert box["e"] is None
            assert ro.txn.snapshot_safe is True
            stats = db.metrics.snapshot()["counters"]["safe_snapshots"]
            assert stats["unsafe"] >= 1
            # the fresh snapshot postdates both commits
            assert ro.call("read", "t", "z") == 1
            ro.call("commit")
        finally:
            scheduler.shutdown()

    def test_interrupt_during_deferrable_wait(self, db):
        fill(db, "t", {1: "a"})
        writer = db.begin("ssi")
        writer.read("t", 1)
        scheduler = SessionScheduler(db, workers=1)
        try:
            ro = scheduler.session()
            box = {}
            begun = threading.Event()
            ro.begin("ssi", deferrable=True,
                     on_done=lambda r, e: (box.update(e=e), begun.set()))
            deadline = time.monotonic() + 5
            while scheduler.suspended_sessions != 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            ro.interrupt()
            assert begun.wait(timeout=10)
            assert isinstance(box["e"], TransactionAbortedError)
            writer.commit()
        finally:
            scheduler.shutdown()


class TestSessionStress:
    def test_smallbank_session_stress_is_serializable_and_clean(self):
        result = run_session_stress(
            make_smallbank(customers=25),
            level="ssi",
            sessions=24,
            workers=3,
            txns_per_session=12,
            check_serializability=True,
        )
        assert result.commits + result.aborts == result.txns
        assert result.serializable is True
        assert result.lock_table_clean, result.describe()

    def test_sibench_session_stress_under_s2pl(self):
        result = run_session_stress(
            make_sibench(items=20),
            level="s2pl",
            sessions=12,
            workers=2,
            txns_per_session=8,
            check_serializability=True,
        )
        assert result.serializable is True
        assert result.lock_table_clean, result.describe()
