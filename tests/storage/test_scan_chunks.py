"""Chunked scan / keys / leaf_pages / incremental vacuum (scan kernel PR).

The chunked walk drops the table latch between batches, so these tests
pin down exactly what survives that: ordering, the resume-after-last-key
contract under concurrent mutation, and the incremental vacuum's
pause/resume accounting.
"""

from repro.mvcc.version import TOMBSTONE, Version
from repro.storage.table import Table


def make_table(n, page_size=4):
    table = Table("t", page_size=page_size)
    for key in range(n):
        table.load(key, f"v{key}")
    return table


class TestScanChunks:
    def test_yields_every_row_in_order(self):
        table = make_table(23)
        chunks = list(table.scan_chunks(None, None, chunk_size=5))
        assert [len(c) for c in chunks] == [5, 5, 5, 5, 3]
        flat = [key for chunk in chunks for key, _ in chunk]
        assert flat == list(range(23))

    def test_bounds_are_inclusive(self):
        table = make_table(20)
        flat = [
            key
            for chunk in table.scan_chunks(3, 11, chunk_size=4)
            for key, _ in chunk
        ]
        assert flat == list(range(3, 12))

    def test_default_chunk_size_is_tree_order(self):
        table = make_table(10, page_size=4)
        chunks = list(table.scan_chunks(None, None))
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_empty_table_yields_nothing(self):
        table = Table("t")
        assert list(table.scan_chunks(None, None, chunk_size=4)) == []

    def test_insert_ahead_of_cursor_is_seen(self):
        table = make_table(8)
        gen = table.scan_chunks(None, None, chunk_size=4)
        first = next(gen)
        assert [key for key, _ in first] == [0, 1, 2, 3]
        # Latch is not held here: a writer lands a key past the cursor...
        table.load(6.5, "new")
        rest = [key for chunk in gen for key, _ in chunk]
        # ...and the resume walk picks it up in order.
        assert rest == [4, 5, 6, 6.5, 7]

    def test_insert_behind_cursor_is_not_revisited(self):
        table = make_table(8)
        gen = table.scan_chunks(None, None, chunk_size=4)
        next(gen)
        table.load(1.5, "behind")
        rest = [key for chunk in gen for key, _ in chunk]
        assert rest == [4, 5, 6, 7]

    def test_chunk_collected_under_latch_then_released(self):
        """Each yielded chunk is a materialised list — mutating the tree
        between chunks never invalidates an in-flight batch."""
        table = make_table(12)
        seen = []
        for chunk in table.scan_chunks(None, None, chunk_size=3):
            seen.extend(key for key, _ in chunk)
            # Delete a key from a *future* chunk mid-iteration.
            if seen[-1] == 2:
                table._tree.delete(9)
        assert seen == [0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11]


class TestKeysIterator:
    def test_keys_ordered_and_complete(self):
        table = make_table(17)
        assert list(table.keys(chunk_size=4)) == list(range(17))

    def test_keys_tolerates_concurrent_delete(self):
        """The old ``iter(list(...))`` snapshot held the latch for the
        whole copy; the chunked iterator must survive deletions between
        chunks without raising."""
        table = make_table(10)
        out = []
        for key in table.keys(chunk_size=2):
            out.append(key)
            if key == 3:
                table._tree.delete(7)
        assert out == [0, 1, 2, 3, 4, 5, 6, 8, 9]


class TestLeafPages:
    def test_full_range_covers_every_leaf(self):
        table = make_table(40, page_size=4)
        pages = table.leaf_pages(None, None)
        covered = {table.leaf_page_of(key) for key in range(40)}
        assert covered <= set(pages)

    def test_window_includes_boundary_successor_leaf(self):
        table = make_table(40, page_size=4)
        pages = table.leaf_pages(10, 20)
        for key in range(10, 21):
            assert table.leaf_page_of(key) in pages
        # The leaf hosting the boundary successor (21) is covered too —
        # it is where an insert into the (20, succ] gap would land.
        assert table.leaf_page_of(21) in pages
        # But the scan does not degenerate to all leaves.
        assert len(pages) < len(set(table.leaf_pages(None, None)))

    def test_unbounded_low_end_starts_at_first_leaf(self):
        table = make_table(12, page_size=4)
        pages = table.leaf_pages(None, 5)
        assert table.leaf_page_of(0) in pages


class TestIncrementalVacuum:
    def fill_prunable(self, n):
        table = Table("t", page_size=4)
        for key in range(n):
            chain, _ = table.ensure_chain(key)
            chain.install(Version(f"old{key}", 1, 1))
            if key % 2:
                chain.install(Version(TOMBSTONE, 3, 2))
            else:
                chain.install(Version(f"new{key}", 5, 2))
        return table

    def test_chunked_matches_single_hold(self):
        whole = self.fill_prunable(30).vacuum(horizon_ts=10)
        chunked = self.fill_prunable(30).vacuum(horizon_ts=10, chunk_size=7)
        assert chunked == whole
        table = self.fill_prunable(30)
        table.vacuum(horizon_ts=10, chunk_size=7)
        # Odd keys ended in a sole tombstone: gone; even keys keep new.
        assert list(table.keys()) == [k for k in range(30) if k % 2 == 0]

    def test_on_pause_fires_between_holds_only(self):
        table = self.fill_prunable(20)
        pauses = []
        table.vacuum(
            horizon_ts=10, chunk_size=6, on_pause=lambda: pauses.append(1)
        )
        # 20 chains / 6 per hold = 4 holds, pauses strictly between them.
        assert len(pauses) == 3

    def test_single_hold_never_pauses(self):
        table = self.fill_prunable(20)
        pauses = []
        table.vacuum(
            horizon_ts=10, chunk_size=None, on_pause=lambda: pauses.append(1)
        )
        assert pauses == []

    def test_keyset_version_bumped_only_when_keys_die(self):
        table = self.fill_prunable(8)
        before = table.keyset_version
        table.vacuum(horizon_ts=10, chunk_size=3)
        assert table.keyset_version > before
        stable = table.keyset_version
        table.vacuum(horizon_ts=10, chunk_size=3)  # nothing left to prune
        assert table.keyset_version == stable
