"""B+-tree unit tests."""

import pytest

from repro.storage.btree import SUPREMUM, BPlusTree


def test_empty_tree():
    tree = BPlusTree(order=4)
    assert len(tree) == 0
    assert tree.get(1) is None
    assert 1 not in tree
    assert tree.successor(0) is SUPREMUM
    assert tree.first_key() is SUPREMUM
    assert list(tree.items()) == []


def test_insert_get_overwrite():
    tree = BPlusTree(order=4)
    tree.insert(1, "a")
    tree.insert(2, "b")
    assert tree.get(1) == "a"
    tree.insert(1, "A")
    assert tree.get(1) == "A"
    assert len(tree) == 2


def test_order_must_be_at_least_4():
    with pytest.raises(ValueError):
        BPlusTree(order=3)


def test_sorted_iteration_after_random_inserts():
    import random

    rng = random.Random(1)
    keys = rng.sample(range(10_000), 500)
    tree = BPlusTree(order=6)
    for key in keys:
        tree.insert(key, key * 2)
    assert [k for k, _v in tree.items()] == sorted(keys)
    tree.check_invariants()


def test_successor():
    tree = BPlusTree(order=4)
    for key in (10, 20, 30, 40, 50):
        tree.insert(key, None)
    assert tree.successor(5) == 10
    assert tree.successor(10) == 20
    assert tree.successor(25) == 30
    assert tree.successor(50) is SUPREMUM
    assert tree.successor(49) == 50


def test_successor_crosses_leaf_boundaries():
    tree = BPlusTree(order=4)
    for key in range(100):
        tree.insert(key, key)
    for key in range(99):
        assert tree.successor(key) == key + 1
    assert tree.successor(99) is SUPREMUM


def test_range_scan_bounds():
    tree = BPlusTree(order=4)
    for key in range(0, 100, 10):
        tree.insert(key, key)
    assert [k for k, _ in tree.range(15, 45)] == [20, 30, 40]
    assert [k for k, _ in tree.range(20, 40)] == [20, 30, 40]
    assert [k for k, _ in tree.range(20, 40, include_lo=False)] == [30, 40]
    assert [k for k, _ in tree.range(20, 40, include_hi=False)] == [20, 30]
    assert [k for k, _ in tree.range(None, 25)] == [0, 10, 20]
    assert [k for k, _ in tree.range(55, None)] == [60, 70, 80, 90]
    assert [k for k, _ in tree.range(41, 49)] == []


def test_delete_lazy():
    tree = BPlusTree(order=4)
    for key in range(20):
        tree.insert(key, key)
    assert tree.delete(7) != []
    assert tree.get(7) is None
    assert len(tree) == 19
    assert tree.delete(7) == []  # already gone
    assert tree.successor(6) == 8
    tree.check_invariants()


def test_insert_reports_touched_pages_on_split():
    tree = BPlusTree(order=4)
    touched_lists = [tree.insert(key, key) for key in range(50)]
    # Non-splitting inserts touch one page; splits touch more (the new
    # sibling and the updated parent).
    assert any(len(touched) == 1 for touched in touched_lists)
    assert any(len(touched) >= 3 for touched in touched_lists)


def test_leaf_page_of_stable_for_present_keys():
    tree = BPlusTree(order=4)
    for key in range(100):
        tree.insert(key, key)
    for key in range(100):
        page = tree.leaf_page_of(key)
        assert page == tree.leaf_page_of(key)  # deterministic
    # Neighbouring keys mostly share pages.
    pages = {tree.leaf_page_of(key) for key in range(100)}
    assert 10 <= len(pages) <= 60


def test_path_page_ids_root_first():
    tree = BPlusTree(order=4)
    for key in range(200):
        tree.insert(key, key)
    path = tree.path_page_ids(100)
    assert path[0] == tree.root_page_id
    assert len(path) >= 2


def test_supremum_ordering():
    assert SUPREMUM > 10**18
    assert not (SUPREMUM < 5)
    assert SUPREMUM >= SUPREMUM
    assert SUPREMUM <= SUPREMUM
    assert 5 < SUPREMUM
    assert (3, "z") < SUPREMUM


def test_tuple_keys():
    tree = BPlusTree(order=4)
    for w in range(3):
        for d in range(4):
            tree.insert((w, d), w * 10 + d)
    assert tree.get((1, 2)) == 12
    assert [k for k, _ in tree.range((1, 0), (1, 99))] == [(1, d) for d in range(4)]
    assert tree.successor((2, 3)) is SUPREMUM
    tree.check_invariants()


def test_string_keys():
    tree = BPlusTree(order=4)
    words = ["pear", "apple", "fig", "lime", "date", "kiwi"]
    for word in words:
        tree.insert(word, len(word))
    assert [k for k, _ in tree.items()] == sorted(words)
    assert tree.successor("fig") == "kiwi"
