"""Versioned table unit tests."""

from repro.mvcc.version import TOMBSTONE, Version
from repro.storage.btree import SUPREMUM
from repro.storage.table import Table


def test_load_visible_to_everyone():
    table = Table("t")
    table.load("k", 42)
    assert table.chain("k").visible(0).value == 42


def test_ensure_chain_reports_new_pages_once():
    table = Table("t", page_size=4)
    chain, touched = table.ensure_chain(1)
    assert touched  # key newly added
    chain2, touched2 = table.ensure_chain(1)
    assert chain2 is chain
    assert touched2 == []


def test_successor_and_first_key():
    table = Table("t")
    for key in (5, 1, 9):
        table.load(key, key)
    assert table.first_key() == 1
    assert table.successor(1) == 5
    assert table.successor(9) is SUPREMUM


def test_scan_chains_materialised():
    table = Table("t")
    for key in range(10):
        table.load(key, key)
    rows = table.scan_chains(3, 6)
    assert [key for key, _ in rows] == [3, 4, 5, 6]


def test_vacuum_drops_old_versions_and_empty_chains():
    table = Table("t")
    chain, _ = table.ensure_chain("x")
    chain.install(Version("v1", 1, 1))
    chain.install(Version("v2", 5, 2))
    chain.install(Version(TOMBSTONE, 8, 3))
    removed = table.vacuum(horizon_ts=10)
    # v1, v2 and the now-sole tombstone all go; the key disappears.
    assert removed == 3
    assert table.chain("x") is None
    assert len(table) == 0


def test_vacuum_keeps_versions_visible_to_horizon():
    table = Table("t")
    chain, _ = table.ensure_chain("x")
    chain.install(Version("v1", 1, 1))
    chain.install(Version("v2", 5, 2))
    removed = table.vacuum(horizon_ts=3)
    assert removed == 0
    assert table.chain("x").visible(3).value == "v1"


def test_keys_never_written_are_absent():
    table = Table("t")
    assert table.chain("missing") is None
