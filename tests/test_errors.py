"""Error-hierarchy tests: the DB_* error returns of Sections 4.3/4.6."""

import pytest

from repro.errors import (
    ABORT_REASONS,
    ConstraintError,
    DeadlockError,
    DuplicateKeyError,
    KeyNotFoundError,
    LockWaitRequired,
    ReproError,
    TransactionAbortedError,
    UnsafeError,
    UpdateConflictError,
)


def test_hierarchy():
    assert issubclass(UnsafeError, TransactionAbortedError)
    assert issubclass(UpdateConflictError, TransactionAbortedError)
    assert issubclass(DeadlockError, TransactionAbortedError)
    assert issubclass(ConstraintError, TransactionAbortedError)
    assert issubclass(TransactionAbortedError, ReproError)
    assert issubclass(KeyNotFoundError, ReproError)
    assert not issubclass(KeyNotFoundError, TransactionAbortedError)


@pytest.mark.parametrize(
    "cls,reason",
    [
        (UnsafeError, "unsafe"),
        (UpdateConflictError, "conflict"),
        (DeadlockError, "deadlock"),
        (ConstraintError, "constraint"),
        (TransactionAbortedError, "aborted"),
    ],
)
def test_reasons(cls, reason):
    assert cls.reason == reason
    assert reason in ABORT_REASONS


def test_abort_error_carries_txn_id():
    error = UnsafeError("boom", txn_id=42)
    assert error.txn_id == 42
    assert "boom" in str(error)


def test_key_errors_carry_location():
    error = KeyNotFoundError("accounts", ("w", 3))
    assert error.table == "accounts" and error.key == ("w", 3)
    dup = DuplicateKeyError("t", 1)
    assert "t[1]" in str(dup)


def test_lock_wait_wraps_request():
    class Req:
        def __repr__(self):
            return "req"

    wait = LockWaitRequired(Req())
    assert wait.request is not None


def test_catching_one_class_suffices_for_retry_loops():
    """The documented pattern: catch TransactionAbortedError, retry."""
    caught = []
    for error in (UnsafeError(), UpdateConflictError(), DeadlockError()):
        try:
            raise error
        except TransactionAbortedError as e:
            caught.append(e.reason)
    assert caught == ["unsafe", "conflict", "deadlock"]
