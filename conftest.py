"""Repo-level pytest configuration.

Puts ``src/`` on sys.path so the test and benchmark suites run even when
the package has not been pip-installed (this sandbox is offline and its
setuptools cannot build PEP 660 editable wheels; ``python setup.py
develop`` installs it properly).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
