"""cProfile wrapper for the engine hot paths.

Profiles either a figure experiment from the catalogue or one of the
micro-benchmark loops, and prints the top functions by cumulative time —
the view that drove the PR-4 optimization pass.

Usage::

    # one (level, MPL) cell of a catalogue experiment
    PYTHONPATH=src python scripts/profile_hotpath.py fig6.1 --level ssi --mpl 10

    # a micro loop: micro:point_read | point_update | scan_100 | read_modify_write
    PYTHONPATH=src python scripts/profile_hotpath.py micro:scan_100 --level ssi

    # sort by total (self) time instead, show 30 rows
    PYTHONPATH=src python scripts/profile_hotpath.py fig6.7 --sort tottime --top 30

    # the commit path: certification vs WAL vs latch-wait breakdown,
    # with or without group commit (PR 9)
    PYTHONPATH=src python scripts/profile_hotpath.py commit --threads 8
    PYTHONPATH=src python scripts/profile_hotpath.py commit --threads 8 --group-commit

    # the scan path: materialize vs lock vs resolve breakdown across
    # the kernel arms (PR 10)
    PYTHONPATH=src python scripts/profile_hotpath.py scan --rows 4000
    PYTHONPATH=src python scripts/profile_hotpath.py scan --scan-arm paged
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.engine.database import Database  # noqa: E402
from repro.sim.scheduler import SimConfig, Simulator  # noqa: E402


def run_figure(exp_id: str, level: str, mpl: int, duration: float, warmup: float):
    from repro.bench.experiments import FIGURES

    try:
        experiment = FIGURES[exp_id]()
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise SystemExit(f"unknown experiment {exp_id!r}; known: {known}")
    sim = experiment.sim_config
    sim.duration, sim.warmup = duration, warmup
    db = Database(experiment.engine_config_factory())
    workload = experiment.workload_factory()
    workload.setup(db)
    simulator = Simulator(db, workload, level, mpl, sim)

    def job():
        result = simulator.run()
        print(f"{exp_id} {level} MPL={mpl}: {result.commits} commits\n")

    return job


def run_micro(name: str, level: str, reps: int):
    from bench_baseline import MICRO_CASES  # sibling script

    cases = {case[0]: case[1] for case in MICRO_CASES}
    try:
        fn = cases[name]
    except KeyError:
        raise SystemExit(f"unknown micro case {name!r}; known: {', '.join(cases)}")

    def job():
        ops = fn(level, reps)
        print(f"micro:{name} [{level}] x{reps}: {ops:,.0f} ops/s\n")

    return job


#: commit-path phase attribution: function-name fragments -> category.
#: Matched against pstats entries (file basename, line, function name).
COMMIT_CATEGORIES = {
    "certification": {
        "before_commit", "check_commit", "_endangering_prepared",
        "after_commit", "prepare_commit",
    },
    "wal": {"log_write", "log_commit", "log_abort", "flush", "_append"},
    "install": {"_logical_commit", "install", "ensure_chain"},
    "latch-wait": {"acquire", "__enter__", "wait"},
}


def run_commit(threads: int, reps: int, group_commit: bool):
    """A threaded small-write commit workload — every transaction writes
    two disjoint keys and commits, so certification, WAL and install all
    run on every commit.  With ``--group-commit`` the batcher forms real
    groups and its phase timings are printed alongside the profile."""
    import tempfile
    import threading

    from repro.engine.config import EngineConfig
    from repro.wal.log import WriteAheadLog

    tmp = tempfile.NamedTemporaryFile(suffix=".wal", delete=False)
    tmp.close()
    config = EngineConfig(
        wal_flush_on_commit=True,
        group_commit=group_commit,
        group_commit_max=16,
        group_commit_wait_us=200,
    )
    wal = WriteAheadLog(path=tmp.name)
    db = Database(config, wal=wal)
    db.create_table("t")
    per_thread = max(1, reps // threads)

    def worker(index: int) -> None:
        for i in range(per_thread):
            txn = db.begin("ssi")
            txn.write("t", (index, i, 0), i)
            txn.write("t", (index, i, 1), i)
            txn.commit()

    def job():
        # Worker 0 runs inline: cProfile only observes the calling
        # thread, so the profiled thread must be a real committer; the
        # others provide the concurrency that forms groups.
        workers = [
            threading.Thread(target=worker, args=(i,))
            for i in range(1, threads)
        ]
        for w in workers:
            w.start()
        worker(0)
        for w in workers:
            w.join()
        commits = db.metrics.snapshot()["counters"]["engine"]["commits"]
        mode = "group" if group_commit else "serial"
        print(f"commit[{mode}] x{threads} threads: {commits} commits, "
              f"{wal.stats['flushes']} flushes\n")
        os.unlink(tmp.name)

    return job, db


def print_commit_breakdown(stats: pstats.Stats, db) -> None:
    """Aggregate the profile into commit-path phases.  cProfile only
    sees the profiled (main) thread, so wall-clock attribution for the
    whole run comes from the batcher's own phase timings when group
    commit is on; the pstats aggregation still ranks the code paths."""
    totals = {category: 0.0 for category in COMMIT_CATEGORIES}
    calls = {category: 0 for category in COMMIT_CATEGORIES}
    for (_file, _line, func), (_cc, nc, tt, _ct, _callers) in stats.stats.items():
        for category, names in COMMIT_CATEGORIES.items():
            if func in names:
                totals[category] += tt
                calls[category] += nc
                break
    print("commit-path phases (profiled thread, self time):")
    for category in COMMIT_CATEGORIES:
        print(f"  {category:>14}: {totals[category] * 1000:8.2f} ms "
              f"({calls[category]} calls)")
    batcher = getattr(db, "_batcher", None)
    if batcher is not None:
        print("group-commit leader phases (all leaders, wall clock):")
        for phase, seconds in batcher.timings.items():
            print(f"  {phase:>14}: {seconds * 1000:8.2f} ms")
        snapshot = db.metrics.snapshot()["counters"]["group_commit"]
        batches = snapshot["batches"] or 1
        print(f"  {snapshot['batched_txns']} txns in {snapshot['batches']} "
              f"batches ({snapshot['batched_txns'] / batches:.1f}/batch)")
    print()


#: scan-path phase attribution: function name -> category.  The three
#: phases of Database.scan — materialising chains in latch-bounded
#: chunks, building + acquiring the chunk's lock batch, and resolving
#: row visibility against the snapshot.
SCAN_CATEGORIES = {
    "materialize": {"scan_chunks", "_materialize_chunks", "scan_chains"},
    "lock": {
        "_scan_lock_records", "_scan_lock_pages", "acquire_read_batch",
        "acquire_coarse_sireads", "probe_detection_batch", "leaf_pages",
        "gap_resource", "record_resource", "page_resource",
    },
    "resolve": {"_resolve_scan_rows", "_visible_value", "visible"},
}

SCAN_ARMS = {
    # scan target arms: (scan_kernel, scan_page_lock_threshold)
    "per_row": (False, None),
    "chunked": (True, None),
    "paged": (True, 64),
}


def run_scan(rows: int, reps: int, level: str, arm: str):
    """Wide-scan workload for the phase breakdown: ``reps`` full-range
    SSI scans over a ``rows``-row table, each in a fresh transaction
    that aborts afterwards so every rep pays the full lock-acquisition
    cost (commit would retain SIREADs and flatter later reps)."""
    from repro.engine.config import EngineConfig

    kernel, threshold = SCAN_ARMS[arm]
    db = Database(EngineConfig(
        scan_kernel=kernel, scan_page_lock_threshold=threshold,
    ))
    db.create_table("wide")
    db.load("wide", ((key, key) for key in range(rows)))

    def job():
        got = 0
        for _ in range(reps):
            txn = db.begin(level)
            got = len(db.scan(txn, "wide"))
            db.abort(txn)
            db.cleanup_suspended()
        print(f"scan[{arm}] x{reps}: {got} rows per scan\n")

    return job


def print_scan_breakdown(stats: pstats.Stats) -> None:
    """Aggregate the profile into scan-path phases (self time, so the
    categories do not double-count nested calls)."""
    totals = {category: 0.0 for category in SCAN_CATEGORIES}
    calls = {category: 0 for category in SCAN_CATEGORIES}
    other = 0.0
    for (_file, _line, func), (_cc, nc, tt, _ct, _callers) in stats.stats.items():
        for category, names in SCAN_CATEGORIES.items():
            if func in names:
                totals[category] += tt
                calls[category] += nc
                break
        else:
            other += tt
    print("scan-path phases (self time):")
    for category in SCAN_CATEGORIES:
        print(f"  {category:>12}: {totals[category] * 1000:8.2f} ms "
              f"({calls[category]} calls)")
    print(f"  {'other':>12}: {other * 1000:8.2f} ms")
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "target",
        help="fig6.N experiment id, micro:<case>, 'commit' (commit-path "
             "phase breakdown), or 'scan' (scan-path phase breakdown)",
    )
    parser.add_argument("--level", default="ssi", help="isolation level (default ssi)")
    parser.add_argument("--mpl", type=int, default=10)
    parser.add_argument("--duration", type=float, default=0.3,
                        help="simulated seconds (figure targets)")
    parser.add_argument("--warmup", type=float, default=0.05)
    parser.add_argument("--reps", type=int, default=1000,
                        help="transactions (micro and commit targets)")
    parser.add_argument("--top", type=int, default=20, help="rows to print")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    parser.add_argument("--threads", type=int, default=8,
                        help="concurrent committers (commit target)")
    parser.add_argument("--group-commit", action="store_true",
                        help="enable the commit batcher (commit target)")
    parser.add_argument("--rows", type=int, default=4000,
                        help="table width (scan target)")
    parser.add_argument("--scan-arm", default="chunked",
                        choices=sorted(SCAN_ARMS),
                        help="scan kernel arm (scan target)")
    args = parser.parse_args(argv)

    commit_db = None
    scan_target = args.target == "scan"
    if scan_target:
        job = run_scan(args.rows, max(1, args.reps // 100), args.level,
                       args.scan_arm)
    elif args.target == "commit":
        job, commit_db = run_commit(args.threads, args.reps, args.group_commit)
    elif args.target.startswith("micro:"):
        job = run_micro(args.target[len("micro:"):], args.level, args.reps)
    else:
        job = run_figure(args.target, args.level, args.mpl,
                         args.duration, args.warmup)

    profiler = cProfile.Profile()
    profiler.enable()
    job()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    if commit_db is not None:
        print_commit_breakdown(stats, commit_db)
    if scan_target:
        print_scan_breakdown(stats)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
