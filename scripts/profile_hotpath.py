"""cProfile wrapper for the engine hot paths.

Profiles either a figure experiment from the catalogue or one of the
micro-benchmark loops, and prints the top functions by cumulative time —
the view that drove the PR-4 optimization pass.

Usage::

    # one (level, MPL) cell of a catalogue experiment
    PYTHONPATH=src python scripts/profile_hotpath.py fig6.1 --level ssi --mpl 10

    # a micro loop: micro:point_read | point_update | scan_100 | read_modify_write
    PYTHONPATH=src python scripts/profile_hotpath.py micro:scan_100 --level ssi

    # sort by total (self) time instead, show 30 rows
    PYTHONPATH=src python scripts/profile_hotpath.py fig6.7 --sort tottime --top 30
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.engine.database import Database  # noqa: E402
from repro.sim.scheduler import SimConfig, Simulator  # noqa: E402


def run_figure(exp_id: str, level: str, mpl: int, duration: float, warmup: float):
    from repro.bench.experiments import FIGURES

    try:
        experiment = FIGURES[exp_id]()
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise SystemExit(f"unknown experiment {exp_id!r}; known: {known}")
    sim = experiment.sim_config
    sim.duration, sim.warmup = duration, warmup
    db = Database(experiment.engine_config_factory())
    workload = experiment.workload_factory()
    workload.setup(db)
    simulator = Simulator(db, workload, level, mpl, sim)

    def job():
        result = simulator.run()
        print(f"{exp_id} {level} MPL={mpl}: {result.commits} commits\n")

    return job


def run_micro(name: str, level: str, reps: int):
    from bench_baseline import MICRO_CASES  # sibling script

    cases = {case[0]: case[1] for case in MICRO_CASES}
    try:
        fn = cases[name]
    except KeyError:
        raise SystemExit(f"unknown micro case {name!r}; known: {', '.join(cases)}")

    def job():
        ops = fn(level, reps)
        print(f"micro:{name} [{level}] x{reps}: {ops:,.0f} ops/s\n")

    return job


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("target", help="fig6.N experiment id, or micro:<case>")
    parser.add_argument("--level", default="ssi", help="isolation level (default ssi)")
    parser.add_argument("--mpl", type=int, default=10)
    parser.add_argument("--duration", type=float, default=0.3,
                        help="simulated seconds (figure targets)")
    parser.add_argument("--warmup", type=float, default=0.05)
    parser.add_argument("--reps", type=int, default=1000,
                        help="transactions (micro targets)")
    parser.add_argument("--top", type=int, default=20, help="rows to print")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    args = parser.parse_args(argv)

    if args.target.startswith("micro:"):
        job = run_micro(args.target[len("micro:"):], args.level, args.reps)
    else:
        job = run_figure(args.target, args.level, args.mpl,
                         args.duration, args.warmup)

    profiler = cProfile.Profile()
    profiler.enable()
    job()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
