#!/usr/bin/env python
"""CI smoke test for the wire-protocol server (PR 7).

Starts an in-process :class:`repro.server.ReproServer` on an ephemeral
port, drives 64 concurrent client connections — half at ``si``, half at
``ssi`` — through a contended smallbank-style transfer mix, then checks:

* every connection completed its transactions (aborts are expected
  outcomes under contention, protocol/engine errors are not),
* the recorded history is serializable for the ssi population (checked
  via the MVSG oracle over the full committed history),
* after a clean shutdown the lock table is empty: no granted rows, no
  owners, no waiters, no SIREAD sentinels, and
* the server stops with no connection, session, or worker left behind.

Exit status 0 on success, 1 on any violation — wired into CI next to the
latch-discipline lint.

Usage::

    PYTHONPATH=src python scripts/server_smoke.py [--connections 64]
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.client import AsyncClient
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import TransactionAbortedError
from repro.server import ReproServer
from repro.sgt.checker import check_serializable

ACCOUNTS = 64
TXNS_PER_CONNECTION = 8


async def client_task(port: int, index: int, level: str,
                      tallies: dict) -> None:
    client = await AsyncClient.connect(port=port)
    try:
        for round_ in range(TXNS_PER_CONNECTION):
            src = (index + round_) % ACCOUNTS
            dst = (index * 7 + round_ + 1) % ACCOUNTS
            if src == dst:
                dst = (dst + 1) % ACCOUNTS
            try:
                await client.begin(level)
                a = await client.read("acct", src)
                b = await client.read("acct", dst)
                await client.put("acct", src, a - 1)
                await client.put("acct", dst, b + 1)
                await client.commit()
                tallies["commits"] += 1
            except TransactionAbortedError:
                tallies["aborts"] += 1
    finally:
        await client.close()


async def run_smoke(connections: int, workers: int) -> tuple[Database, dict]:
    db = Database(EngineConfig(record_history=True))
    db.create_table("acct")
    db.load("acct", [(i, 1000) for i in range(ACCOUNTS)])
    server = ReproServer(db, workers=workers)
    await server.start()
    tallies = {"commits": 0, "aborts": 0}
    try:
        await asyncio.gather(*(
            client_task(server.port, index,
                        "ssi" if index % 2 == 0 else "si", tallies)
            for index in range(connections)
        ))
    finally:
        await server.stop()
    tallies["connections"] = connections
    tallies["open_sessions"] = server.scheduler.open_sessions
    tallies["server_connections"] = server.connections
    return db, tallies


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--connections", type=int, default=64)
    parser.add_argument("--workers", type=int, default=8)
    args = parser.parse_args(argv)

    db, tallies = asyncio.run(run_smoke(args.connections, args.workers))
    expected = args.connections * TXNS_PER_CONNECTION
    total = tallies["commits"] + tallies["aborts"]
    print(f"{args.connections} connections ({args.workers} workers): "
          f"{tallies['commits']} commits, {tallies['aborts']} aborts")

    problems = []
    if total != expected:
        problems.append(f"lost transactions: {total} finished, "
                        f"{expected} submitted")
    if tallies["commits"] == 0:
        problems.append("no transaction committed")
    if tallies["server_connections"] != 0:
        problems.append(f"{tallies['server_connections']} connections "
                        "still registered after shutdown")
    if tallies["open_sessions"] != 0:
        problems.append(f"{tallies['open_sessions']} sessions survived "
                        "shutdown")

    db.cleanup_suspended()
    lm = db.locks
    residue = {
        "granted": lm.table_size(),
        "owners": len(lm._by_owner),
        "waiters": len(lm._waiting),
        "siread": lm.siread_lock_count(),
    }
    if any(residue.values()):
        problems.append(f"lock table dirty after shutdown: {residue}")

    report = check_serializable(db.history)
    if not report.serializable:
        problems.append(f"history not serializable: {report.describe()}")
    else:
        print(f"history serializable ({tallies['commits']} commits certified)")

    # money is conserved across every committed transfer
    with db.begin("si") as txn:
        balance = sum(value for _key, value in txn.scan("acct"))
    if balance != 1000 * ACCOUNTS:
        problems.append(f"invariant violated: balance {balance} != "
                        f"{1000 * ACCOUNTS}")

    if problems:
        print("\nserver smoke FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("server smoke passed: clean shutdown, clean lock table")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
