"""Pinned performance baseline for the engine hot paths.

Runs the ``bench_micro_ops`` micro-benchmarks (point read / point update /
scan / read-modify-write per isolation level) plus one seeded SmallBank
and one seeded sibench experiment, and records the results as strict JSON.
The committed ``BENCH_PR4.json`` at the repo root pins the before/after
numbers of the PR-4 optimization pass; CI re-runs this script in
``--compare`` mode so a hot-path regression fails the build.

Machine-speed normalization: every capture includes a *calibration*
score — the ops/sec of a fixed pure-Python loop measured on the same
machine at the same moment.  Comparisons divide each metric by the
calibration score, so a slower CI runner does not read as a regression;
only changes relative to the machine's own Python speed do.

Usage::

    # capture and print (writes nothing)
    PYTHONPATH=src python scripts/bench_baseline.py

    # capture to a file
    PYTHONPATH=src python scripts/bench_baseline.py --out /tmp/after.json

    # build the committed baseline from a before + after capture
    PYTHONPATH=src python scripts/bench_baseline.py \
        --before /tmp/before.json --out BENCH_PR4.json

    # CI regression gate: quick re-run, compare against the pinned file
    PYTHONPATH=src python scripts/bench_baseline.py \
        --quick --compare BENCH_PR4.json --tolerance 0.15
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from datetime import datetime, timezone

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import Database, EngineConfig  # noqa: E402
from repro.sim.scheduler import SimConfig, Simulator  # noqa: E402
from repro.workloads.sibench import make_sibench  # noqa: E402
from repro.workloads.smallbank import make_smallbank  # noqa: E402

SCHEMA = "repro-bench-baseline/1"

#: fixed seed for the experiment runs — the baseline is only meaningful
#: if every capture executes the same transaction schedule.
SEED = 1234

#: micro-benchmark repetitions (transactions timed per sample).
FULL_REPS = {"point": 2000, "scan": 300, "rmw": 1500}
QUICK_REPS = {"point": 400, "scan": 60, "rmw": 300}
SAMPLES = 3  # best-of-N samples; max ops/sec is the least-noisy estimator


# --------------------------------------------------------------- micro ops


def _make_db(rows: int = 1000) -> Database:
    db = Database(EngineConfig())
    db.create_table("t")
    db.load("t", ((i, i) for i in range(rows)))
    return db


def _bench_txn(make_txn, reps: int) -> float:
    """ops/sec over ``reps`` transactions, best of SAMPLES runs."""
    best = 0.0
    for _ in range(SAMPLES):
        start = time.perf_counter()
        for _ in range(reps):
            make_txn()
        elapsed = time.perf_counter() - start
        best = max(best, reps / elapsed if elapsed > 0 else 0.0)
    return best


def micro_point_read(level: str, reps: int) -> float:
    db = _make_db()

    def one_txn():
        txn = db.begin(level)
        txn.read("t", 500)
        txn.commit()

    return _bench_txn(one_txn, reps)


def micro_point_update(level: str, reps: int) -> float:
    db = _make_db()

    def one_txn():
        txn = db.begin(level)
        txn.write("t", 500, 1)
        txn.commit()

    return _bench_txn(one_txn, reps)


def micro_scan_100(level: str, reps: int) -> float:
    db = _make_db()

    def one_txn():
        txn = db.begin(level)
        txn.scan("t", 100, 199)
        txn.commit()

    return _bench_txn(one_txn, reps)


def micro_scan_1000(level: str, reps: int) -> float:
    """Full-width scan — the chunked kernel's home turf (PR 10)."""
    db = _make_db()

    def one_txn():
        txn = db.begin(level)
        txn.scan("t")
        txn.commit()

    return _bench_txn(one_txn, reps)


def micro_scan_prefix_10(level: str, reps: int) -> float:
    """Early-terminating prefix scan: first 10 rows of an open range —
    cost should track the prefix, not the table width (PR 10)."""
    db = _make_db()

    def one_txn():
        txn = db.begin(level)
        txn.scan_prefix("t", 100, None, limit=10)
        txn.commit()

    return _bench_txn(one_txn, reps)


def micro_read_modify_write(level: str, reps: int) -> float:
    db = _make_db()

    def one_txn():
        txn = db.begin(level)
        value = txn.read_for_update("t", 500)
        txn.write("t", 500, value + 1)
        txn.commit()

    return _bench_txn(one_txn, reps)


MICRO_CASES = (
    # (name, fn, rep-class, levels) — mirrors benchmarks/bench_micro_ops.py
    ("point_read", micro_point_read, "point", ("si", "ssi", "s2pl")),
    ("point_update", micro_point_update, "point", ("si", "ssi", "s2pl")),
    ("scan_100", micro_scan_100, "scan", ("si", "ssi", "s2pl")),
    # range-scan micros added with the chunked scan kernel (PR 10); the
    # --compare gate skips metrics absent from an older baseline.
    ("scan_1000", micro_scan_1000, "scan", ("si", "ssi", "s2pl")),
    ("scan_prefix_10", micro_scan_prefix_10, "scan", ("si", "ssi", "s2pl")),
    ("read_modify_write", micro_read_modify_write, "rmw", ("si", "ssi", "s2pl")),
)


def calibrate() -> float:
    """Machine-speed yardstick: ops/sec of a fixed pure-Python loop.

    Deliberately exercises the operations the engine hot path is made of
    (dict hits, attribute access, integer compares) so the score tracks
    interpreter speed, not e.g. floating-point throughput.
    """
    table = {i: i for i in range(512)}
    best = 0.0
    for _ in range(SAMPLES):
        start = time.perf_counter()
        acc = 0
        for i in range(200_000):
            acc += table[i & 511]
        elapsed = time.perf_counter() - start
        best = max(best, 200_000 / elapsed if elapsed > 0 else 0.0)
    return best


# ------------------------------------------------------------- experiments


def _experiment_specs(quick: bool):
    duration, warmup = (0.25, 0.05) if quick else (0.8, 0.1)
    return {
        "smallbank": {
            "workload": lambda: make_smallbank(customers=800),
            "config": lambda: EngineConfig.berkeleydb_style(page_size=8),
            "sim": SimConfig(
                duration=duration, warmup=warmup, commit_flush=False, seed=SEED
            ),
            "levels": ("si", "ssi"),
            "mpl": 10,
        },
        "sibench": {
            "workload": lambda: make_sibench(items=100, queries_per_update=1),
            "config": lambda: EngineConfig.innodb_style(),
            "sim": SimConfig(
                duration=duration, warmup=warmup, commit_flush=True,
                flush_time=0.002, seed=SEED,
            ),
            "levels": ("si", "ssi"),
            "mpl": 10,
        },
    }


def run_experiments(quick: bool) -> dict:
    out = {}
    for name, spec in _experiment_specs(quick).items():
        per_level = {}
        for level in spec["levels"]:
            db = Database(spec["config"]())
            workload = spec["workload"]()
            workload.setup(db)
            simulator = Simulator(db, workload, level, spec["mpl"], spec["sim"])
            start = time.perf_counter()
            result = simulator.run()
            wall = time.perf_counter() - start
            per_level[level] = {
                "wall_clock_s": wall,
                "commits": result.commits,
                "throughput": result.throughput,
                "error_rate": result.error_rate,
            }
        out[name] = {
            "mpl": spec["mpl"],
            "seed": SEED,
            "duration": spec["sim"].duration,
            "levels": per_level,
            "wall_clock_s": sum(lv["wall_clock_s"] for lv in per_level.values()),
        }
    return out


# ------------------------------------------------------------- concurrency
#
# PR-5 cases: real-thread smallbank clients (wall-clock at 1/4/8 threads)
# and the experiment grid run sequentially vs process-parallel.  Captures
# record the machine's CPU count alongside, because the parallel-grid
# speedup is bounded by it — on a single-core runner the honest expectation
# is ~1.0x, and the comparison gate treats it accordingly.

THREAD_COUNTS = (1, 4, 8)
FULL_STRESS_TXNS = 480
QUICK_STRESS_TXNS = 120


def _threaded_smallbank_wall(threads: int, total_txns: int) -> dict:
    """Wall-clock for ``total_txns`` smallbank transactions split across
    ``threads`` real threads at SSI (via the stress executor)."""
    from repro.exec import run_threaded_stress
    from repro.workloads.smallbank import make_smallbank

    result = run_threaded_stress(
        make_smallbank(customers=200),
        level="ssi",
        threads=threads,
        txns_per_thread=total_txns // threads,
        seed=SEED,
    )
    if not result.lock_table_clean:
        raise RuntimeError(f"stress left a dirty lock table: {result.describe()}")
    return {
        "wall_clock_s": result.wall_clock_s,
        "txns": result.txns,
        "commits": result.commits,
        "aborts": result.aborts,
    }


def _grid_experiment(quick: bool):
    from repro.bench.harness import Experiment
    from repro.workloads.smallbank import make_smallbank

    duration, warmup = (0.12, 0.02) if quick else (0.4, 0.05)
    return Experiment(
        exp_id="bench-grid",
        title="baseline level x MPL grid (parallel-runner benchmark)",
        workload_factory=lambda: make_smallbank(customers=200),
        engine_config_factory=lambda: EngineConfig(),
        sim_config=SimConfig(duration=duration, warmup=warmup, seed=SEED),
        levels=("si", "ssi", "s2pl"),
        mpls=(2, 5, 10, 20),
    )


def _run_grid(experiment, parallel: int) -> tuple[float, dict]:
    """Run the grid, falling back to the sequential runner on an engine
    that predates the ``parallel`` parameter (the 'before' capture)."""
    from repro.bench.harness import run_experiment

    start = time.perf_counter()
    try:
        result = run_experiment(experiment, parallel=parallel)
    except TypeError:  # pre-PR5 engine: no parallel parameter
        result = run_experiment(experiment)
    return time.perf_counter() - start, result.to_dict()


def run_concurrency(quick: bool) -> dict:
    stress_txns = QUICK_STRESS_TXNS if quick else FULL_STRESS_TXNS
    threaded = {
        str(threads): _threaded_smallbank_wall(threads, stress_txns)
        for threads in THREAD_COUNTS
    }
    experiment = _grid_experiment(quick)
    wall_seq, grid_seq = _run_grid(experiment, parallel=1)
    wall_par, grid_par = _run_grid(experiment, parallel=4)
    return {
        "cpus": os.cpu_count() or 1,
        "threaded_smallbank": threaded,
        "grid": {
            "cells": len(experiment.levels) * len(experiment.mpls),
            "sim_duration": experiment.sim_config.duration,
            "parallel_1_wall_s": wall_seq,
            "parallel_4_wall_s": wall_par,
            "speedup": wall_seq / wall_par if wall_par else 1.0,
            "identical": grid_seq == grid_par,
        },
    }


# ------------------------------------------------------------ ssi hardening
#
# PR-6 case: memory-bounded SIREAD state.  A scan-heavy sibench run at
# high MPL retains SIREAD sentinels on every scanned row and gap; without
# a budget the lock table grows with the suspended-transaction backlog.
# With ``siread_budget`` set, the engine escalates record sentinels to
# page/table granularity whenever the table exceeds the budget, so the
# peak gauge must stay under budget + a per-thread in-flight allowance
# (fine locks acquired by scans racing the single reactive escalator —
# see run_ssi_hardening).  Both runs certify against the MVSG oracle:
# escalation may only
# introduce false-positive aborts, never miss an rw-antidependency.

SSI_HARDENING_BUDGET = 1200
SSI_HARDENING_THREADS = 8
SSI_HARDENING_ITEMS = 100


def _ssi_hardening_case(budget, threads: int, txns_per_thread: int) -> dict:
    import threading as _threading

    from repro.exec import run_threaded_stress
    from repro.workloads.sibench import make_sibench

    peak = {"lock_table": 0, "samples": 0}
    stop = _threading.Event()
    holder: dict = {}

    def on_database(db) -> None:
        holder["db"] = db
        gauge = db.metrics.gauges()["lock_table_size"]

        def sample() -> None:
            while not stop.is_set():
                size = gauge.read()
                if size > peak["lock_table"]:
                    peak["lock_table"] = size
                peak["samples"] += 1
                time.sleep(0.001)

        thread = _threading.Thread(target=sample, daemon=True, name="gauge-sampler")
        thread.start()
        holder["sampler"] = thread

    try:
        result = run_threaded_stress(
            make_sibench(items=SSI_HARDENING_ITEMS, queries_per_update=2),
            level="ssi",
            threads=threads,
            txns_per_thread=txns_per_thread,
            seed=SEED,
            config=EngineConfig(record_history=True, siread_budget=budget),
            check_serializability=True,
            on_database=on_database,
        )
    finally:
        stop.set()
        sampler = holder.get("sampler")
        if sampler is not None:
            sampler.join()
    # One last sample after the quiesce so the peak is never zero on a
    # machine too fast for the 1ms sampler to catch the run.
    db = holder["db"]
    snapshot = db.metrics.snapshot()
    locks = snapshot["counters"]["locks"]
    peak["lock_table"] = max(peak["lock_table"], snapshot["gauges"]["lock_table_size"])
    return {
        "budget": budget,
        "threads": threads,
        "txns": result.txns,
        "commits": result.commits,
        "aborts": result.aborts,
        "serializable": result.serializable,
        "lock_table_clean": result.lock_table_clean,
        "peak_lock_table": peak["lock_table"],
        "gauge_samples": peak["samples"],
        "escalations": locks.get("escalations", 0),
        "escalated_records": locks.get("escalated_records", 0),
        "siread_dropped": locks.get("siread_dropped", 0),
        "final_lock_table": snapshot["gauges"]["lock_table_size"],
    }


def run_ssi_hardening(quick: bool) -> dict:
    txns_per_thread = 30 if quick else 100
    threads = SSI_HARDENING_THREADS
    # In-flight allowance: escalation is reactive and single-escalator
    # (a non-blocking guard), so while one thread drains the table each
    # other thread can contribute up to *two* scan footprints of fine
    # locks — one scan mid-flight plus one just-committed transaction
    # whose retained sentinels the current pass has not reached yet.  A
    # footprint is rec + gap per row plus boundary/write locks.  The gate
    # is what makes "bounded" meaningful: it is independent of the total
    # transaction count, while the unbounded peak grows with the backlog.
    allowance = threads * 2 * (2 * SSI_HARDENING_ITEMS + 24)
    bounded = _ssi_hardening_case(SSI_HARDENING_BUDGET, threads, txns_per_thread)
    unbounded = _ssi_hardening_case(None, threads, txns_per_thread)
    gate = SSI_HARDENING_BUDGET + allowance
    return {
        "budget": SSI_HARDENING_BUDGET,
        "overshoot_allowance": allowance,
        "peak_gate": gate,
        "bounded": bounded,
        "unbounded": unbounded,
        "bounded_within_gate": bounded["peak_lock_table"] <= gate,
    }


# ----------------------------------------------------------------- capture


def capture(quick: bool, label: str) -> dict:
    reps = QUICK_REPS if quick else FULL_REPS
    calibration = calibrate()
    micro = {}
    for name, fn, rep_class, levels in MICRO_CASES:
        for level in levels:
            ops = fn(level, reps[rep_class])
            micro[f"{name}[{level}]"] = {
                "ops_per_sec": ops,
                "normalized": ops / calibration,
            }
    experiments = {}
    for name, entry in run_experiments(quick).items():
        entry["normalized_wall"] = entry["wall_clock_s"] * calibration
        experiments[name] = entry
    ssi_hardening = run_ssi_hardening(quick)
    concurrency = run_concurrency(quick)
    for entry in concurrency["threaded_smallbank"].values():
        entry["normalized_wall"] = entry["wall_clock_s"] * calibration
    concurrency["grid"]["normalized_parallel_1"] = (
        concurrency["grid"]["parallel_1_wall_s"] * calibration
    )
    concurrency["grid"]["normalized_parallel_4"] = (
        concurrency["grid"]["parallel_4_wall_s"] * calibration
    )
    return {
        "label": label,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
        "profile": "quick" if quick else "full",
        "calibration_ops_per_sec": calibration,
        "micro": micro,
        "experiments": experiments,
        "concurrency": concurrency,
        "ssi_hardening": ssi_hardening,
    }


# ----------------------------------------------------------------- compare


def baseline_capture(document: dict) -> dict:
    """The capture to compare against: ``after`` in a before/after
    document, else the document itself (a bare capture)."""
    return document.get("after", document)


def machine_mismatches(base: dict, current: dict) -> list[tuple]:
    """Fingerprint fields on which the two captures disagree.

    Calibration normalization cancels raw single-thread speed but not
    core counts, interpreter versions, or platform scheduling behavior —
    so a cross-machine comparison is only honest when the caller opts in.
    """
    mismatches = []
    for field in ("python", "platform", "cpus"):
        base_value = base.get(field)
        current_value = current.get(field)
        if base_value != current_value:
            mismatches.append((field, base_value, current_value))
    return mismatches


def compare_captures(base: dict, current: dict, tolerance: float) -> list[dict]:
    """Compare normalized metrics; returns one row per metric.

    A micro metric regresses when its normalized ops/sec falls more than
    ``tolerance`` below the baseline; an experiment regresses when its
    normalized wall-clock rises more than ``tolerance`` above it.
    """
    rows = []
    for name, entry in base.get("micro", {}).items():
        cur = current["micro"].get(name)
        if cur is None:
            continue
        ratio = cur["normalized"] / entry["normalized"] if entry["normalized"] else 1.0
        rows.append({
            "metric": f"micro:{name}",
            "kind": "ops/sec (normalized)",
            "base": entry["normalized"],
            "current": cur["normalized"],
            "ratio": ratio,
            "regressed": ratio < 1.0 - tolerance,
        })
    for name, entry in base.get("experiments", {}).items():
        cur = current["experiments"].get(name)
        if cur is None:
            continue
        # Scale by simulated duration so a --quick run (0.25s of simulated
        # traffic) compares meaningfully against the full 0.8s baseline:
        # compute cost per simulated second, not absolute wall-clock.
        base_per_s = (
            entry["normalized_wall"] / entry["duration"]
            if entry.get("duration") else entry["normalized_wall"]
        )
        cur_per_s = (
            cur["normalized_wall"] / cur["duration"]
            if cur.get("duration") else cur["normalized_wall"]
        )
        ratio = cur_per_s / base_per_s if base_per_s else 1.0
        rows.append({
            "metric": f"experiment:{name}",
            "kind": "wall-clock per simulated second (normalized)",
            "base": base_per_s,
            "current": cur_per_s,
            "ratio": ratio,
            "regressed": ratio > 1.0 + tolerance,
        })
    base_conc = base.get("concurrency")
    cur_conc = current.get("concurrency")
    if base_conc and cur_conc:
        # Threaded wall-clock is intrinsically noisier than the seeded
        # simulator runs, so these rows use a widened (1.5x) tolerance.
        wide = 1.5 * tolerance
        for threads, entry in base_conc.get("threaded_smallbank", {}).items():
            cur = cur_conc.get("threaded_smallbank", {}).get(threads)
            if cur is None:
                continue
            # Scale by transaction count: a --quick gate run executes a
            # quarter of the full baseline's transactions, and comparing
            # absolute walls would let a 4x regression hide in the gap.
            base_per_txn = (
                entry["normalized_wall"] / entry["txns"]
                if entry.get("txns") else entry["normalized_wall"]
            )
            cur_per_txn = (
                cur["normalized_wall"] / cur["txns"]
                if cur.get("txns") else cur["normalized_wall"]
            )
            ratio = cur_per_txn / base_per_txn if base_per_txn else 1.0
            rows.append({
                "metric": f"concurrency:threaded_smallbank[{threads}]",
                "kind": "wall-clock per transaction (normalized)",
                "base": base_per_txn,
                "current": cur_per_txn,
                "ratio": ratio,
                "regressed": ratio > 1.0 + wide,
            })
        base_grid = base_conc.get("grid")
        cur_grid = cur_conc.get("grid")
        if base_grid and cur_grid:
            # Scale by total simulated traffic (cells x sim duration): the
            # --quick grid simulates less per cell than the full baseline.
            def _per_sim_second(grid: dict) -> float:
                total = grid.get("cells", 1) * grid.get("sim_duration", 1.0)
                wall = grid.get("normalized_parallel_4", 0.0)
                return wall / total if total else wall

            base_scaled = _per_sim_second(base_grid)
            cur_scaled = _per_sim_second(cur_grid)
            ratio = cur_scaled / base_scaled if base_scaled else 1.0
            rows.append({
                "metric": "concurrency:grid[parallel=4]",
                "kind": "wall-clock per simulated second (normalized)",
                "base": base_scaled,
                "current": cur_scaled,
                "ratio": ratio,
                "regressed": ratio > 1.0 + wide,
            })
            if not cur_grid.get("identical", True):
                rows.append({
                    "metric": "concurrency:grid[identical]",
                    "kind": "parallel grid == sequential grid",
                    "base": 1.0,
                    "current": 0.0,
                    "ratio": float("inf"),
                    "regressed": True,
                })
    cur_hardening = current.get("ssi_hardening")
    if cur_hardening:
        # Correctness gates, not perf: the budgeted run must keep its
        # peak under the gate and still certify serializable.
        bounded_ok = bool(cur_hardening.get("bounded_within_gate"))
        serializable_ok = (
            cur_hardening.get("bounded", {}).get("serializable") is not False
            and cur_hardening.get("unbounded", {}).get("serializable")
            is not False
        )
        rows.append({
            "metric": "ssi_hardening:peak_within_gate",
            "kind": "peak lock-table entries <= budget + allowance",
            "base": 1.0,
            "current": 1.0 if bounded_ok else 0.0,
            "ratio": 1.0 if bounded_ok else float("inf"),
            "regressed": not bounded_ok,
        })
        rows.append({
            "metric": "ssi_hardening:serializable",
            "kind": "MVSG certification under escalation",
            "base": 1.0,
            "current": 1.0 if serializable_ok else 0.0,
            "ratio": 1.0 if serializable_ok else float("inf"),
            "regressed": not serializable_ok,
        })
    return rows


def speedups(before: dict, after: dict) -> dict:
    """Before -> after speedup factors, from normalized metrics."""
    micro = {}
    for name, entry in after["micro"].items():
        base = before["micro"].get(name)
        if base and base["normalized"]:
            micro[name] = entry["normalized"] / base["normalized"]
    experiments = {}
    for name, entry in after["experiments"].items():
        base = before["experiments"].get(name)
        if base and base["normalized_wall"]:
            experiments[name] = {
                "speedup": base["normalized_wall"] / entry["normalized_wall"],
                "wall_clock_reduction_pct": 100.0 * (
                    1.0 - entry["normalized_wall"] / base["normalized_wall"]
                ),
            }
    concurrency = {}
    before_conc = before.get("concurrency")
    after_conc = after.get("concurrency")
    if before_conc and after_conc:
        for threads, entry in after_conc.get("threaded_smallbank", {}).items():
            base = before_conc.get("threaded_smallbank", {}).get(threads)
            if base and base.get("normalized_wall"):
                concurrency[f"threaded_smallbank[{threads}]"] = (
                    base["normalized_wall"] / entry["normalized_wall"]
                )
        after_grid = after_conc.get("grid", {})
        before_grid = before_conc.get("grid", {})
        if after_grid.get("normalized_parallel_4") and before_grid.get(
            "normalized_parallel_1"
        ):
            concurrency["grid_parallel_4_vs_before_sequential"] = (
                before_grid["normalized_parallel_1"]
                / after_grid["normalized_parallel_4"]
            )
        if after_grid.get("speedup"):
            concurrency["grid_parallel_4_vs_parallel_1"] = after_grid["speedup"]
    return {
        "micro": micro,
        "experiments": experiments,
        "concurrency": concurrency,
    }


# -------------------------------------------------------------------- JSON


def _reject_constant(value: str) -> None:
    raise ValueError(f"non-standard JSON constant: {value}")


def dump_strict(document: dict, path: str) -> None:
    text = json.dumps(document, indent=2, allow_nan=False, sort_keys=True)
    json.loads(text, parse_constant=_reject_constant)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")


# --------------------------------------------------------------------- CLI


def _print_capture(cap: dict) -> None:
    print(f"calibration: {cap['calibration_ops_per_sec']:,.0f} loop-ops/s")
    print(f"{'micro benchmark':<28}{'ops/sec':>12}{'normalized':>14}")
    for name, entry in cap["micro"].items():
        print(f"{name:<28}{entry['ops_per_sec']:>12,.0f}{entry['normalized']:>14.4f}")
    for name, entry in cap["experiments"].items():
        print(
            f"experiment:{name:<17}{entry['wall_clock_s']:>11.2f}s "
            f"(normalized {entry['normalized_wall']:.3g})"
        )
        for level, stats in entry["levels"].items():
            print(
                f"    {level:<6} {stats['commits']:>7} commits  "
                f"{stats['throughput']:>10.0f} commits/s  "
                f"err/commit {stats['error_rate']:.4f}"
            )
    hardening = cap.get("ssi_hardening")
    if hardening:
        bounded = hardening["bounded"]
        unbounded = hardening["unbounded"]
        print(
            f"ssi hardening (budget={hardening['budget']}, "
            f"gate={hardening['peak_gate']}):"
        )
        print(
            f"    bounded   peak lock table {bounded['peak_lock_table']:>7} "
            f"({bounded['escalations']} escalations, "
            f"{bounded['escalated_records']} records escalated, "
            f"serializable={bounded['serializable']})"
        )
        print(
            f"    unbounded peak lock table {unbounded['peak_lock_table']:>7} "
            f"(serializable={unbounded['serializable']})"
        )
        print(f"    within gate: {hardening['bounded_within_gate']}")
    conc = cap.get("concurrency")
    if conc:
        print(f"concurrency (cpus={conc['cpus']}):")
        for threads, entry in conc["threaded_smallbank"].items():
            print(
                f"    threaded smallbank x{threads:<3} "
                f"{entry['wall_clock_s']:>8.2f}s  "
                f"({entry['commits']} commits / {entry['aborts']} aborts)"
            )
        grid = conc["grid"]
        print(
            f"    grid ({grid['cells']} cells)  parallel=1 "
            f"{grid['parallel_1_wall_s']:.2f}s  parallel=4 "
            f"{grid['parallel_4_wall_s']:.2f}s  speedup "
            f"{grid['speedup']:.2f}x  identical={grid['identical']}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", help="write the capture (strict JSON) here")
    parser.add_argument(
        "--before",
        help="previous capture file to embed as the 'before' side "
        "(the new capture becomes 'after', with speedups computed)",
    )
    parser.add_argument(
        "--compare", help="baseline JSON to compare the fresh capture against"
    )
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed normalized regression (default 0.15)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced repetitions / shorter runs (CI smoke)")
    parser.add_argument("--label", default=None, help="capture label")
    parser.add_argument(
        "--allow-cross-machine", action="store_true",
        help="permit --compare against a capture from a different machine "
        "(different python/platform/cpu fingerprint); without this flag "
        "cross-machine comparisons are refused rather than silently "
        "normalized",
    )
    args = parser.parse_args(argv)

    label = args.label or ("after" if args.before else "capture")
    print(f"running {'quick' if args.quick else 'full'} baseline capture ...")
    cap = capture(quick=args.quick, label=label)
    _print_capture(cap)

    if args.compare:
        with open(args.compare, encoding="utf-8") as handle:
            document = json.load(handle, parse_constant=_reject_constant)
        base = baseline_capture(document)
        mismatches = machine_mismatches(base, cap)
        if mismatches:
            print(f"\nbaseline {args.compare} was captured on a different "
                  "machine:")
            for field, base_value, current_value in mismatches:
                print(f"  {field}: baseline={base_value!r} "
                      f"current={current_value!r}")
            if not args.allow_cross_machine:
                print(
                    "refusing the comparison: calibration-normalized ratios "
                    "do not fully cancel machine differences (cache sizes, "
                    "core counts, thermal budgets).  Re-capture the baseline "
                    "on this machine, or pass --allow-cross-machine to "
                    "accept the extra noise explicitly."
                )
                return 2
            print("  proceeding anyway (--allow-cross-machine)")
        rows = compare_captures(base, cap, args.tolerance)
        print(f"\ncomparison vs {args.compare} (tolerance {args.tolerance:.0%}):")
        for row in rows:
            flag = "slow" if row["regressed"] else "ok"
            print(f"  {row['metric']:<38} ratio {row['ratio']:>6.2f}  {flag}")
        # Single-metric jitter on shared CI runners routinely exceeds any
        # usable tolerance, so the verdict is two-level: the *geometric
        # mean* across all metrics must stay within tolerance (a broad
        # slowdown always moves the mean), and no single metric may
        # regress beyond twice the tolerance (a severe one-path
        # regression cannot hide behind the mean).
        #
        # Every ratio is oriented so that > 1 means slower: micro rows
        # store ops/sec ratios (inverted here), experiment rows store
        # wall-clock ratios.
        slowdowns = [
            1.0 / row["ratio"] if row["metric"].startswith("micro:")
            else row["ratio"]
            for row in rows
            if row["ratio"] > 0
        ]
        geomean = (
            math.prod(slowdowns) ** (1.0 / len(slowdowns)) if slowdowns else 1.0
        )
        worst = max(slowdowns, default=1.0)
        print(f"  geometric-mean slowdown: {geomean:.3f} "
              f"(fail above {1.0 + args.tolerance:.2f})")
        print(f"  worst single-metric slowdown: {worst:.3f} "
              f"(fail above {1.0 + 2 * args.tolerance:.2f})")
        if geomean > 1.0 + args.tolerance:
            print("\nREGRESSION: hot paths are broadly slower than the baseline")
            return 1
        if worst > 1.0 + 2 * args.tolerance:
            print("\nREGRESSION: a hot path is severely slower than the baseline")
            return 1
        print("\nno regression beyond tolerance")
        return 0

    if args.out:
        if args.before:
            with open(args.before, encoding="utf-8") as handle:
                before = json.load(handle, parse_constant=_reject_constant)
            before = baseline_capture(before)
            before["label"] = "before"
            document = {
                "schema": SCHEMA,
                "before": before,
                "after": cap,
                "speedup": speedups(before, cap),
            }
        else:
            document = {"schema": SCHEMA, "after": cap}
        dump_strict(document, args.out)
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
