#!/usr/bin/env python
"""Validate that JSON files parse under a *strict* reader.

``json.loads`` happily accepts the non-standard ``Infinity``/``NaN``
literals that ``json.dumps`` emits for non-finite floats — exactly the
corruption the telemetry layer is designed to prevent.  This checker
rejects them, so CI fails loudly if any emitted report regresses.

Usage::

    python scripts/check_json_strict.py FILE [FILE ...]

``.jsonl`` files are validated line by line; everything else is parsed
as one document.  Exits non-zero on the first invalid file.
"""

import json
import sys


def reject_constant(value):
    raise ValueError(f"non-standard JSON constant: {value!r}")


def check_file(path: str) -> None:
    with open(path, "r", encoding="utf-8") as handle:
        if path.endswith(".jsonl"):
            for number, line in enumerate(handle, start=1):
                if line.strip():
                    try:
                        json.loads(line, parse_constant=reject_constant)
                    except ValueError as error:
                        raise ValueError(f"line {number}: {error}") from None
        else:
            json.loads(handle.read(), parse_constant=reject_constant)


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    for path in argv:
        try:
            check_file(path)
        except (OSError, ValueError) as error:
            print(f"FAIL {path}: {error}")
            return 1
        print(f"ok   {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
