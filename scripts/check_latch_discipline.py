#!/usr/bin/env python
"""Static latch-discipline lint (PR 5).

Five AST checks over the engine's concurrency-critical modules, run in CI
next to ruff/mypy:

1. **Protected-state mutations.**  Each checked module registers the
   shared attributes a latch protects (the registry below mirrors the
   latch-hierarchy docs in ``repro.engine.latches``).  Any statement that
   *mutates* one of them — subscript/attribute assignment, augmented
   assignment, or a mutating method call (``append``, ``pop``, ...) —
   must sit lexically inside a ``with`` block holding the required latch.
   Reads are deliberately not checked: the engine's documented fast paths
   rely on GIL-atomic latch-free probes, and the hierarchy only requires
   *mutations* to be latched.  A genuinely-safe latch-free mutation can
   be waived with a ``# latch-free`` comment on the offending line, which
   this lint treats as a reviewed exception.

2. **No suspension under latch (PR 7).**  A function must not ``await``
   or enter a session/thread suspension point (``_block_on``,
   ``Session._suspend*``, a blocking ``Completion.wait``) while a
   recognised latch is lexically held: the waker may need that latch to
   resolve the wait, so suspension under latch is a deadlock by
   construction.  A ``threading.Condition`` ``wait`` is exempt — it
   releases its own lock — but engine latches are plain mutexes and are
   not.

3. **No blocking RPC under latch (PR 8).**  In the sharding layer
   (``repro.shard``), a call on a shard backend or wire link
   (``self.backends[s].op(...)``, ``self.link.call(...)``) is a
   blocking round trip to another process.  Holding a recognised latch
   across one stalls every local thread needing that latch on a remote
   peer — so the lint flags any such call lexically under a latch.  The
   coordinator's *apply gates* are deliberately not latches (they are
   commit-visibility gates, held across the ``commit_prepared`` fan-out
   by design; see the coordinator's module docstring) and are not
   registered here.

4. **No WAL I/O under latch (PR 9).**  A call that appends to or
   flushes the write-ahead log (``self.wal.log_write(...)``,
   ``db.wal.flush()``...) is file I/O — the group-commit pipeline's
   whole point is that it happens *outside* the tracker/commit latched
   section, so the lint flags any ``wal``-receiver logging call made
   while a recognised latch is lexically held.  (The WAL's own leaf
   latch is taken inside the log module and ranks at the bottom of the
   hierarchy, so it never blocks engine latch holders.)

5. **Acquisition order.**  Within a function, nested ``with`` blocks
   over recognised latch expressions must acquire in non-decreasing rank
   order (``txn < tracker < commit < table < lock-queue < lock-stripe <
   lock-owner < obs < wal``).  Same-rank re-acquisition is legal only
   for lock-manager stripes under the queue latch (the documented
   multi-stripe licence) — mirroring the runtime ``CheckedLatch``
   enforcement, but at review time and on every path, not just the paths
   a test happens to drive.

The lint is intentionally syntactic: it sees lexical nesting, not
call-graph latch state, so it cannot prove the absence of cross-function
violations (that is what ``REPRO_LATCH_DEBUG=1`` test runs are for).  It
exists to catch the common regression — a new mutation of a registered
attribute outside its latch — before a racy test run has to.

Usage::

    python scripts/check_latch_discipline.py            # lint default set
    python scripts/check_latch_discipline.py FILE...    # lint given files
"""

from __future__ import annotations

import ast
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: rank table (must mirror repro.engine.latches.RANKS)
RANKS = {
    "txn": 10,
    "tracker": 20,
    "commit": 30,
    "table": 40,
    "lock-queue": 50,
    "lock-stripe": 60,
    "lock-owner": 70,
    "obs": 80,
    # Coordinator-process latches (repro.shard): they never nest with
    # engine latches — the engines live in other processes — so their
    # ranks only order them against each other.
    "vis": 84,
    "abort-log": 86,
    "wal": 90,
}

#: latch attribute name -> rank name, for ``self.<attr>`` / ``obj.<attr>``
LATCH_ATTRS = {
    "_txn_latch": "txn",
    "_tracker_latch": "tracker",
    "_commit_latch": "commit",
    "latch": "table",  # Table.latch
    "_queue_latch": "lock-queue",
    "_owner_latch": "lock-owner",
    "_latch": "wal",  # WriteAheadLog._latch
    "_vis_latch": "vis",  # Coordinator's commit-sequence vector latch
    "_abort_lock": "abort-log",  # Coordinator's explain_abort memory
}

#: bare names recognised as latches (module-level singletons)
LATCH_NAMES = {"OBS_LATCH": "obs"}

#: subscripted collections of latches: ``self._stripe_latches[i]``
LATCH_COLLECTIONS = {"_stripe_latches": "lock-stripe"}

#: method calls that mutate their receiver
MUTATORS = {
    "append", "add", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "update", "appendleft", "popleft",
}

#: calls that suspend the current execution (thread-park or session
#: suspension) — never legal while a latch is held.  ``wait`` is listed
#: because engine code only calls it on Event/Completion objects;
#: Condition.wait (which releases its own lock) lives behind ``_cv``
#: receivers and is exempted in the checker.
SUSPEND_CALLS = {
    "_block_on", "_suspend", "_suspend_on_request", "_suspend_on_completion",
    "wait",
}

#: receiver attribute names whose ``wait`` releases its own lock
CONDITION_RECEIVERS = {"_cv", "_condition"}

#: WAL methods that perform log I/O: never legal under an engine latch
#: (rule 4) — flush-before-release is sequenced by the commit pipeline,
#: not by holding latches across file writes.
WAL_CALLS = {"log_write", "log_commit", "log_abort", "log_begin",
             "log_checkpoint", "flush"}

#: receiver attribute names that denote the write-ahead log
WAL_RECEIVERS = {"wal"}

#: receiver names that denote a shard backend or wire link: calling
#: through one is a blocking RPC to another process (rule 3).
RPC_RECEIVERS = {"backend", "backends", "link", "shard_link"}

#: files where the RPC-under-latch rule applies (the sharding layer)
RPC_FILES = {
    "src/repro/shard/coordinator.py",
    "src/repro/shard/backend.py",
    "src/repro/shard/process.py",
    "src/repro/shard/stress.py",
}

#: files checked by default, with the shared attributes each latch
#: protects: attr -> rank-name of the required latch.
DEFAULT_RULES = {
    "src/repro/engine/database.py": {
        "_active": "txn",
        "_registry": "txn",
        "_suspended": "txn",
        "_retired_writers": "txn",
    },
    "src/repro/locking/manager.py": {
        "_by_owner": "lock-owner",
        "_waiting": "lock-owner",
        "_siread_counts": "lock-owner",
        "_granted_count": "lock-owner",
        # Escalation bookkeeping: weights must be inserted/removed under
        # the owner latch so the has_escalated_locks() gate and the
        # _forget_locks surplus accounting stay coherent.
        "_escalated_weights": "lock-owner",
    },
    # The safe-snapshot monitor mutates its watch maps under the engine's
    # tracker latch (its register/on_commit/on_abort contracts).
    "src/repro/core/conflicts.py": {
        "_watching": "tracker",
        "_watchers": "tracker",
    },
    # Wait-completion layers: no protected attributes of their own, but
    # the no-suspension-under-latch rule must hold everywhere a wait can
    # start or a session can suspend.
    "src/repro/engine/transaction.py": {},
    "src/repro/engine/waits.py": {},
    # Group-commit batcher: leader-run certification under hoisted
    # latches, WAL I/O and finalize strictly after they drop — rules 2
    # and 4 police exactly that split.
    "src/repro/engine/groupcommit.py": {},
    "src/repro/session/__init__.py": {},
    "src/repro/server/core.py": {},
    # Sharding layer: the commit-sequence vector and the explain_abort
    # memory are mutated under their own coordinator-process latches;
    # the RPC-under-latch rule (rule 3) covers every function here.
    "src/repro/shard/coordinator.py": {
        "_csn": "vis",
        "_aborts": "abort-log",
    },
    "src/repro/shard/backend.py": {},
    "src/repro/shard/process.py": {},
    "src/repro/shard/stress.py": {},
}


def latch_rank_of(node: ast.expr, aliases: dict) -> str | None:
    """The rank name of a recognised latch expression, else None."""
    if isinstance(node, ast.Attribute) and node.attr in LATCH_ATTRS:
        return LATCH_ATTRS[node.attr]
    if isinstance(node, ast.Name):
        if node.id in LATCH_NAMES:
            return LATCH_NAMES[node.id]
        return aliases.get(node.id)
    if isinstance(node, ast.Subscript):
        target = node.value
        if isinstance(target, ast.Attribute) and target.attr in LATCH_COLLECTIONS:
            return LATCH_COLLECTIONS[target.attr]
        if isinstance(target, ast.Name) and target.id in LATCH_COLLECTIONS:
            return LATCH_COLLECTIONS[target.id]
    return None


def is_rpc_receiver(node: ast.expr) -> bool:
    """True when ``node`` names a shard backend or wire link — e.g.
    ``self.link``, ``backend``, ``self.backends[s]``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and node.attr in RPC_RECEIVERS:
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id in RPC_RECEIVERS


def self_attr_name(node: ast.expr) -> str | None:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class FunctionChecker(ast.NodeVisitor):
    """Walks one function body tracking the lexical latch stack."""

    def __init__(self, rules: dict, path: str, source_lines: list[str]):
        self.rules = rules
        self.path = path
        self.lines = source_lines
        self.problems: list[str] = []
        self.held: list[str] = []  # rank names, acquisition order
        self.aliases: dict = {}  # local name -> rank name
        self.check_rpc = path in RPC_FILES

    # ------------------------------------------------------------ plumbing

    def report(self, node: ast.AST, message: str) -> None:
        line = self.lines[node.lineno - 1] if node.lineno <= len(self.lines) else ""
        if "latch-free" in line or "latch-ok" in line:
            return  # reviewed waiver
        self.problems.append(f"{self.path}:{node.lineno}: {message}")

    def holds(self, rank_name: str) -> bool:
        return rank_name in self.held

    # --------------------------------------------------------- latch stack

    def visit_With(self, node: ast.With) -> None:
        entered = []
        for item in node.items:
            rank_name = latch_rank_of(item.context_expr, self.aliases)
            if rank_name is None:
                continue
            rank = RANKS[rank_name]
            held_ranks = [RANKS[name] for name in self.held]
            if held_ranks and rank < max(held_ranks) and rank_name not in self.held:
                self.report(
                    node,
                    f"acquires {rank_name}({rank}) while holding "
                    f"{self.held[-1]}({held_ranks[-1]}) — latch order violation",
                )
            if (
                held_ranks
                and rank == max(held_ranks)
                and rank_name in self.held
                and rank_name == "lock-stripe"
                and "lock-queue" not in self.held
            ):
                self.report(
                    node,
                    "acquires a second lock-stripe latch without holding "
                    "the lock-queue licence",
                )
            self.held.append(rank_name)
            entered.append(rank_name)
        for statement in node.body:
            self.visit(statement)
        for _ in entered:
            self.held.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track local aliases of latch expressions (stripe = self._stripe_latches[i])
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            rank_name = latch_rank_of(node.value, self.aliases)
            if rank_name is None and isinstance(node.value, ast.Subscript):
                rank_name = latch_rank_of(node.value, self.aliases)
            if rank_name is not None:
                self.aliases[node.targets[0].id] = rank_name
        for target in node.targets:
            self.check_mutation_target(target)
        self.visit(node.value)

    # ---------------------------------------------------------- mutations

    def protected_attr(self, node: ast.expr) -> str | None:
        """The registered attribute a mutation of ``node`` touches."""
        attr = self_attr_name(node)
        if attr is not None and attr in self.rules:
            return attr
        if isinstance(node, ast.Subscript):
            return self.protected_attr(node.value)
        return None

    def check_mutation_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.check_mutation_target(element)
            return
        attr = None
        if isinstance(target, ast.Subscript):
            attr = self.protected_attr(target.value)
        elif isinstance(target, ast.Attribute):
            name = self_attr_name(target)
            if name in self.rules:
                attr = name
        if attr is not None:
            self.require_latch(target, attr)

    def require_latch(self, node: ast.AST, attr: str) -> None:
        needed = self.rules[attr]
        if not self.holds(needed):
            self.report(
                node,
                f"mutates self.{attr} without holding the {needed} latch",
            )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.check_mutation_target(node.target)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self.check_mutation_target(target)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
            attr = self.protected_attr(func.value)
            if attr is not None:
                self.require_latch(node, attr)
        if self.held:
            name = None
            receiver = None
            if isinstance(func, ast.Attribute):
                name = func.attr
                if isinstance(func.value, ast.Attribute):
                    receiver = func.value.attr
                elif isinstance(func.value, ast.Name):
                    receiver = func.value.id
            elif isinstance(func, ast.Name):
                name = func.id
            if (
                name in SUSPEND_CALLS
                and receiver not in CONDITION_RECEIVERS
            ):
                self.report(
                    node,
                    f"calls suspension point {name}() while holding the "
                    f"{self.held[-1]} latch — the waker may need that latch",
                )
        if (
            self.held
            and isinstance(func, ast.Attribute)
            and func.attr in WAL_CALLS
            and (
                (isinstance(func.value, ast.Attribute)
                 and func.value.attr in WAL_RECEIVERS)
                or (isinstance(func.value, ast.Name)
                    and func.value.id in WAL_RECEIVERS)
            )
        ):
            self.report(
                node,
                f"WAL I/O {func.attr}() while holding the "
                f"{self.held[-1]} latch — log writes and flushes must "
                "run outside latched sections",
            )
        if (
            self.check_rpc
            and self.held
            and isinstance(func, ast.Attribute)
            and is_rpc_receiver(func.value)
        ):
            self.report(
                node,
                f"blocking RPC {func.attr}() while holding the "
                f"{self.held[-1]} latch — remote round trips must not "
                "stall local latch holders",
            )
        self.generic_visit(node)

    def visit_Await(self, node: ast.Await) -> None:
        if self.held:
            self.report(
                node,
                f"awaits while holding the {self.held[-1]} latch — "
                "suspension under latch deadlocks by construction",
            )
        self.generic_visit(node)

    # Nested defs get their own checker: a closure does not inherit the
    # enclosing function's lexical latch context at call time.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        check_function(node, self.rules, self.path, self.lines, self.problems)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


def check_function(
    node: ast.AST,
    rules: dict,
    path: str,
    lines: list[str],
    problems: list[str],
) -> None:
    checker = FunctionChecker(rules, path, lines)
    for statement in node.body:  # type: ignore[attr-defined]
        checker.visit(statement)
    problems.extend(checker.problems)


def check_file(path: str, rules: dict) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    problems: list[str] = []
    relative = os.path.relpath(path, REPO_ROOT)

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Constructors mutate freely: the object is not published
                # to other threads until __init__ returns.
                if child.name != "__init__":
                    check_function(child, rules, relative, lines, problems)
            else:
                walk(child)

    walk(tree)
    return problems


def main(argv: list[str]) -> int:
    if argv:
        targets = {os.path.relpath(os.path.abspath(p), REPO_ROOT): p for p in argv}
        selected = {
            rel: (path, DEFAULT_RULES.get(rel, {}))
            for rel, path in targets.items()
        }
    else:
        selected = {
            rel: (os.path.join(REPO_ROOT, rel), rules)
            for rel, rules in DEFAULT_RULES.items()
        }
    all_problems: list[str] = []
    for rel, (path, rules) in sorted(selected.items()):
        all_problems.extend(check_file(path, rules))
    if all_problems:
        print(f"latch discipline: {len(all_problems)} problem(s)")
        for problem in all_problems:
            print(f"  {problem}")
        return 1
    print(f"latch discipline: {len(selected)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
