"""Generate the golden-outcome fixture for the CC-policy equivalence test.

Runs a bank of conflict-prone transaction scenarios through seeded random
interleavings at every isolation level and records who committed, who
aborted, and with which reason.  The resulting JSON is committed as
``tests/properties/data/cc_equivalence.json`` and replayed by
``tests/properties/test_cc_equivalence.py``: any refactor of the
concurrency-control dispatch must reproduce these outcomes exactly.

The committed fixture was generated from the pre-policy-extraction engine
(the monolithic ``Database`` with inline ``if txn.isolation is ...``
branches), so the test proves the policy layer is behaviour-preserving.

Usage::

    PYTHONPATH=src python scripts/gen_cc_equivalence.py
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from repro.engine.config import EngineConfig
from repro.sim.interleave import run_interleaving
from repro.sim.ops import Delete, Get, Insert, Read, ReadForUpdate, Scan, Write

LEVELS = ("ssi", "si", "s2pl", "sgt")

OUT_PATH = Path(__file__).resolve().parent.parent / (
    "tests/properties/data/cc_equivalence.json"
)


def _write_skew():
    """The canonical SI write-skew pair (paper Fig 2.1)."""

    def setup(db):
        db.create_table("t")
        db.load("t", [("x", 50), ("y", 50)])

    def t0():
        x = yield Read("t", "x")
        y = yield Read("t", "y")
        yield Write("t", "x", x + y - 150)

    def t1():
        x = yield Read("t", "x")
        y = yield Read("t", "y")
        yield Write("t", "y", x + y - 150)

    return setup, [t0, t1], [4, 4]


def _lost_update():
    """Two read-modify-write increments of the same item."""

    def setup(db):
        db.create_table("t")
        db.load("t", [("x", 0)])

    def incr():
        x = yield Read("t", "x")
        yield Write("t", "x", x + 1)

    return setup, [incr, incr], [3, 3]


def _locking_rmw():
    """Two SELECT-FOR-UPDATE increments (first-updater-wins path)."""

    def setup(db):
        db.create_table("t")
        db.load("t", [("x", 0)])

    def incr():
        x = yield ReadForUpdate("t", "x")
        yield Write("t", "x", x + 1)

    return setup, [incr, incr], [3, 3]


def _phantom_pair():
    """Two scan-then-insert transactions over one range (Fig 3.6/3.7)."""

    def setup(db):
        db.create_table("t")
        db.load("t", [(0, "a"), (10, "b")])

    def t0():
        rows = yield Scan("t", 0, 10)
        yield Insert("t", 5, len(rows))

    def t1():
        rows = yield Scan("t", 0, 10)
        yield Insert("t", 6, len(rows))

    return setup, [t0, t1], [3, 3]


def _read_only_anomaly():
    """Fekete/O'Neil read-only anomaly: two updaters plus a reporter."""

    def setup(db):
        db.create_table("acct")
        db.load("acct", [("chk", 0), ("sav", 0)])

    def deposit():
        sav = yield Read("acct", "sav")
        yield Write("acct", "sav", sav + 20)

    def withdraw():
        chk = yield Read("acct", "chk")
        sav = yield Read("acct", "sav")
        yield Write("acct", "chk", chk + sav - 10)

    def report():
        yield Read("acct", "chk")
        yield Read("acct", "sav")

    return setup, [deposit, withdraw, report], [3, 4, 3]


def _delete_vs_read():
    """A scan-and-delete racing a read-and-write of the doomed key."""

    def setup(db):
        db.create_table("t")
        db.load("t", [(1, "a"), (3, "b"), (7, "c")])

    def reaper():
        yield Scan("t", 1, 7)
        yield Delete("t", 3)

    def toucher():
        v = yield Get("t", 3, "gone")
        yield Write("t", 7, v)

    return setup, [reaper, toucher], [3, 3]


SCENARIOS = [
    ("write_skew", _write_skew),
    ("lost_update", _lost_update),
    ("locking_rmw", _locking_rmw),
    ("phantom_pair", _phantom_pair),
    ("read_only_anomaly", _read_only_anomaly),
    ("delete_vs_read", _delete_vs_read),
]


def random_order(rng: random.Random, step_counts) -> list[int]:
    """A seeded random merge of the per-transaction step sequences."""
    order = [
        index for index, count in enumerate(step_counts) for _ in range(count)
    ]
    rng.shuffle(order)
    return order


def generate(case_count: int = 60) -> list[dict]:
    cases = []
    for seed in range(case_count):
        rng = random.Random(seed)
        name, factory = SCENARIOS[seed % len(SCENARIOS)]
        setup, programs, step_counts = factory()
        order = random_order(rng, step_counts)
        outcomes = {}
        for level in LEVELS:
            setup_l, programs_l, _counts = factory()
            outcome = run_interleaving(
                setup_l,
                programs_l,
                order,
                isolation=level,
                engine_config=EngineConfig(record_history=True),
            )
            outcomes[level] = {
                str(index): status for index, status in outcome.statuses.items()
            }
        cases.append(
            {"seed": seed, "scenario": name, "order": order, "outcomes": outcomes}
        )
    return cases


def main() -> None:
    cases = generate()
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps({"cases": cases}, indent=1) + "\n")
    committed = sum(
        1
        for case in cases
        for statuses in case["outcomes"].values()
        for status in statuses.values()
        if status == "committed"
    )
    print(f"wrote {len(cases)} cases ({committed} commits) to {OUT_PATH}")


if __name__ == "__main__":
    main()
