#!/usr/bin/env python
"""CI smoke for the sharded kernel (PR 8).

Boots a 2-shard :class:`~repro.shard.process.ShardCluster` (forked
shard servers, pipelined wire links), drives a mixed SmallBank load —
single-customer programs on the fast path plus cross-shard Amalgamate
transfers through 2PC — and then holds the run to both oracles: the
merged per-shard history must be MVSG-certified serializable and every
shard's lock table must drain clean at shutdown.

Usage::

    PYTHONPATH=src python scripts/sharded_smoke.py
    PYTHONPATH=src python scripts/sharded_smoke.py --threads 4 --txns 25
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.shard import (  # noqa: E402
    ShardCluster,
    run_sharded_stress,
    smallbank_partition_map,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--customers", type=int, default=32)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--txns", type=int, default=20,
                        help="transactions per client thread")
    parser.add_argument("--cross-ratio", type=float, default=0.25)
    args = parser.parse_args(argv)

    pmap = smallbank_partition_map(args.shards, args.customers)
    print(f"sharded smoke: {args.shards} shards, {args.threads} threads x "
          f"{args.txns} txns, {args.cross_ratio:.0%} cross-shard", flush=True)
    with ShardCluster(pmap, workers=4) as cluster:
        result = run_sharded_stress(
            cluster.coordinator,
            customers=args.customers,
            threads=args.threads,
            txns_per_thread=args.txns,
            cross_ratio=args.cross_ratio,
        )
    print(f"  {result.describe()}")
    counters = result.metrics["counters"]["coordinator"]
    print(f"  fast path: {counters['single_shard_commits']} commits, "
          f"2PC: {counters['cross_shard_commits']} commits / "
          f"{counters['cross_shard_unsafe']} certification aborts, "
          f"{counters['escalation_conflicts']} escalation conflicts",
          flush=True)

    problems = []
    if result.commits <= 0:
        problems.append("no transaction committed")
    if result.cross_shard_attempted <= 0:
        problems.append("no cross-shard transaction was attempted")
    if result.commits + result.aborts != result.txns:
        problems.append(
            f"lost transactions ({result.commits + result.aborts}"
            f"/{result.txns})"
        )
    if not result.serializable:
        problems.append(
            "merged history NON-SERIALIZABLE: "
            + " -> ".join(str(node) for node in result.cycle)
        )
    if not result.lock_tables_clean:
        problems.append(f"dirty shard lock tables: {result.shard_audits}")
    if problems:
        print(f"sharded smoke FAILED: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("sharded smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
