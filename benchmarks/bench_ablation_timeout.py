"""Ablation: lock-wait timeouts vs unbounded waiting.

With a periodic-only deadlock detector (the Berkeley DB configuration),
a lock-wait timeout is the alternative liveness mechanism: waiters give
up instead of stalling until the next sweep.  Measured: SmallBank at
high contention with no timeout, a generous timeout, and an aggressive
one — throughput vs the abort mix trade-off.
"""

import pytest

from repro.engine.config import DeadlockMode, EngineConfig
from repro.engine.database import Database
from repro.sim.scheduler import SimConfig, Simulator
from repro.workloads.smallbank import make_smallbank


def run_with_timeout(lock_timeout):
    workload = make_smallbank(customers=100)
    db = Database(EngineConfig(
        deadlock_mode=DeadlockMode.PERIODIC,
        lock_timeout=lock_timeout,
    ))
    workload.setup(db)
    return Simulator(
        db, workload, "s2pl", 10,
        SimConfig(duration=0.8, warmup=0.1, commit_flush=True,
                  flush_time=0.010),
    ).run()


@pytest.mark.benchmark(group="ablation-timeout")
def test_lock_timeout_liveness(benchmark):
    def run():
        return {
            label: run_with_timeout(value)
            for label, value in (
                ("none", None), ("100ms", 0.100), ("10ms", 0.010),
            )
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, result in outcomes.items():
        print(f"  timeout={label:<6} throughput={result.throughput:8.0f} "
              f"timeouts={result.aborts['timeout']} "
              f"deadlocks={result.aborts['deadlock']}")
    assert outcomes["none"].aborts["timeout"] == 0
    assert outcomes["10ms"].aborts["timeout"] > 0
    # Timeouts substitute for deadlock-sweep stalls: aggressive timeouts
    # must not collapse throughput below the stall-prone baseline.
    assert outcomes["10ms"].throughput > outcomes["none"].throughput * 0.5
