#!/usr/bin/env python
"""Connection-count scaling benchmark for the session-scheduler server (PR 7).

The claim under test: because lock waits and deferrable waits suspend
*sessions* instead of parking *threads*, one 8-worker pool can serve
1024 concurrent transactional connections — two orders of magnitude more
connections than threads — while every committed history stays
MVSG-certified serializable and the lock table drains clean.

For each connection count (64 / 256 / 1024) the benchmark starts a fresh
in-process server, opens that many asyncio client connections, and runs
a contended transfer mix (read two accounts, write both, commit at
``ssi``) with per-transaction latency recorded client-side.  Reported
per level: commits, aborts, throughput (commits/s), latency p50/p95/p99,
the serializability verdict, and the lock-table audit.

Results land in strict JSON (``--out BENCH_PR7.json``) with the machine
fingerprint (cpu count, python version, platform) and worker-pool size
in the metadata — comparisons against a capture from another machine are
meaningless and refused by ``scripts/bench_baseline.py --compare``.

Usage::

    PYTHONPATH=src python benchmarks/bench_server_connections.py \
        --out BENCH_PR7.json            # full capture (64/256/1024)
    PYTHONPATH=src python benchmarks/bench_server_connections.py --quick
    PYTHONPATH=src python benchmarks/bench_server_connections.py \
        --check BENCH_PR7.json          # CI: validate committed claims
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.client import AsyncClient  # noqa: E402
from repro.engine.config import EngineConfig  # noqa: E402
from repro.engine.database import Database  # noqa: E402
from repro.errors import TransactionAbortedError  # noqa: E402
from repro.server import ReproServer  # noqa: E402
from repro.sgt.checker import check_serializable  # noqa: E402

WORKERS = 8
ACCOUNTS = 1024
#: per-connection transaction counts, chosen so total work grows slowly
#: with the connection count (the point is connections, not throughput)
LEVELS = {64: 16, 256: 8, 1024: 4}
QUICK_LEVELS = {64: 4}


def percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


async def run_level(connections: int, txns_per_connection: int) -> dict:
    db = Database(EngineConfig(record_history=True))
    db.create_table("acct")
    db.load("acct", [(i, 1000) for i in range(ACCOUNTS)])
    server = ReproServer(db, workers=WORKERS)
    await server.start()

    latencies: list[float] = []
    tallies = {"commits": 0, "aborts": 0}
    started = asyncio.Event()

    async def one_connection(index: int) -> None:
        client = await AsyncClient.connect(port=server.port)
        try:
            await started.wait()
            for round_ in range(txns_per_connection):
                src = (index * 31 + round_ * 7) % ACCOUNTS
                dst = (index * 17 + round_ * 13 + 1) % ACCOUNTS
                if src == dst:
                    dst = (dst + 1) % ACCOUNTS
                begin = time.perf_counter()
                try:
                    await client.begin("ssi")
                    a = await client.read("acct", src)
                    b = await client.read("acct", dst)
                    await client.put("acct", src, a - 1)
                    await client.put("acct", dst, b + 1)
                    await client.commit()
                    tallies["commits"] += 1
                except TransactionAbortedError:
                    tallies["aborts"] += 1
                latencies.append(time.perf_counter() - begin)
        finally:
            await client.close()

    tasks = [asyncio.ensure_future(one_connection(i))
             for i in range(connections)]
    # Let every connection establish before any transaction starts, so
    # the measured window really holds `connections` concurrent sessions.
    await asyncio.sleep(0.05)
    wall_start = time.perf_counter()
    started.set()
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - wall_start
    peak_sessions = server.scheduler.open_sessions
    await server.stop()

    db.cleanup_suspended()
    lm = db.locks
    lock_table_clean = (
        lm.table_size() == 0
        and len(lm._by_owner) == 0
        and len(lm._waiting) == 0
        and lm.siread_lock_count() == 0
    )
    report = check_serializable(db.history)
    latencies.sort()
    total = tallies["commits"] + tallies["aborts"]
    return {
        "connections": connections,
        "txns_per_connection": txns_per_connection,
        "txns": total,
        "commits": tallies["commits"],
        "aborts": tallies["aborts"],
        "wall_clock_s": wall,
        "throughput_commits_per_s": (
            tallies["commits"] / wall if wall > 0 else 0.0
        ),
        "latency_p50_s": percentile(latencies, 0.50),
        "latency_p95_s": percentile(latencies, 0.95),
        "latency_p99_s": percentile(latencies, 0.99),
        "serializable": report.serializable,
        "lock_table_clean": lock_table_clean,
        "peak_open_sessions": peak_sessions,
    }


def capture(levels: dict) -> dict:
    results = []
    for connections, txns_per_connection in levels.items():
        print(f"  {connections} connections x {txns_per_connection} txns "
              f"on {WORKERS} workers ...", flush=True)
        level = asyncio.run(run_level(connections, txns_per_connection))
        verdict = "serializable" if level["serializable"] else "NON-SERIALIZABLE"
        clean = "clean" if level["lock_table_clean"] else "DIRTY"
        print(
            f"    {level['commits']} commits / {level['aborts']} aborts in "
            f"{level['wall_clock_s']:.2f}s "
            f"({level['throughput_commits_per_s']:.0f} commits/s, "
            f"p99 {level['latency_p99_s'] * 1000:.1f}ms, {verdict}, "
            f"{clean} lock table)", flush=True,
        )
        results.append(level)
    return {
        "benchmark": "server_connections",
        "workers": WORKERS,
        "accounts": ACCOUNTS,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
        "levels": results,
    }


def check_document(path: str) -> int:
    """CI gate over the committed capture: the PR's acceptance claims
    must hold in the recorded data (machine-independent — no live timing
    comparison, which would be meaningless across runners)."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    problems = []
    if document.get("workers", 10**9) > 8:
        problems.append(f"worker pool {document.get('workers')} exceeds 8")
    for field in ("python", "platform", "cpus"):
        if field not in document:
            problems.append(f"metadata field {field!r} missing")
    levels = {level["connections"]: level
              for level in document.get("levels", [])}
    for required in (64, 256, 1024):
        level = levels.get(required)
        if level is None:
            problems.append(f"no capture at {required} connections")
            continue
        if not level.get("serializable"):
            problems.append(f"{required}-connection history not serializable")
        if not level.get("lock_table_clean"):
            problems.append(f"{required}-connection lock table dirty")
        if level.get("commits", 0) <= 0:
            problems.append(f"{required}-connection run committed nothing")
        finished = level.get("commits", 0) + level.get("aborts", 0)
        expected = level.get("connections", 0) * level.get(
            "txns_per_connection", 0)
        if finished != expected:
            problems.append(
                f"{required}-connection run lost transactions "
                f"({finished}/{expected})")
    if problems:
        print(f"{path}: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"{path}: ok — >=1024 connections on <={document['workers']} "
          "workers, serializable, clean")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", help="write the capture (strict JSON) here")
    parser.add_argument("--quick", action="store_true",
                        help="64 connections only (CI smoke)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate a committed capture instead of running")
    args = parser.parse_args(argv)

    if args.check:
        return check_document(args.check)

    levels = QUICK_LEVELS if args.quick else LEVELS
    print(f"server connection scaling ({WORKERS} workers, "
          f"{ACCOUNTS} accounts):")
    document = capture(levels)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
