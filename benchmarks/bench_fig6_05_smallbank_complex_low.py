"""Figure 6.5 — Berkeley DB SmallBank, complex transactions at low
contention, log flushed at commit.

Paper result: as Figure 6.4 but with smaller gaps — each transaction does
ten operations against one flush, so the flush amortisation dominates and
the three levels bunch together.
"""

import pytest

from repro.bench.experiments import fig6_5

from conftest import run_figure

MPLS = [1, 5, 10, 20]


@pytest.mark.benchmark(group="fig6.5")
def test_fig6_5_smallbank_complex_low(benchmark):
    outcome = run_figure(benchmark, fig6_5(), MPLS)

    si = outcome.throughput("si", 20)
    ssi = outcome.throughput("ssi", 20)
    s2pl = outcome.throughput("s2pl", 20)

    # All three bunch together at low contention + heavy I/O.
    assert ssi > si * 0.6
    assert s2pl > si * 0.5

    # Throughput scales with MPL via group commit for everyone.
    for level in ("si", "ssi", "s2pl"):
        assert outcome.throughput(level, 10) > outcome.throughput(level, 1) * 2
