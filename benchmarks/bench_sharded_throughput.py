#!/usr/bin/env python
"""Sharded-kernel throughput benchmark (PR 8).

The claims under test for the shared-nothing sharded kernel
(:mod:`repro.shard`):

* a **single-shard-routable** SmallBank mix (``cross_ratio=0`` under the
  customer-aligned partition map) runs entirely on the coordinator's
  fast path — zero cross-shard commits, zero 2PC round trips — and
  scales with shard count on multi-core machines;
* a **mixed** load (25% cross-shard Amalgamate) exercises the full 2PC
  PREPARE/COMMIT path and records the 2PC latency histogram;
* **sibench** under an item-range partition map mixes single-shard
  updates with inherently cross-shard full-scan queries;
* every run's merged per-shard history is MVSG-certified serializable
  and every shard's lock table drains clean.

Results land in strict JSON (``--out BENCH_PR8.json``) with the machine
fingerprint.  The CI gate (``--check``) validates the committed
document's correctness claims machine-independently; the 4-vs-1-shard
throughput ratio (>= 1.5x) is only enforced for captures taken on
multi-core machines — on a 1-cpu container shard processes serialise on
the one core and the ratio is meaningless, so it is recorded but not
gated.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded_throughput.py \
        --out BENCH_PR8.json            # full capture (1/2/4 shards)
    PYTHONPATH=src python benchmarks/bench_sharded_throughput.py --quick
    PYTHONPATH=src python benchmarks/bench_sharded_throughput.py \
        --check BENCH_PR8.json          # CI: validate committed claims
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import TransactionAbortedError  # noqa: E402
from repro.shard import (  # noqa: E402
    ShardCluster,
    check_merged_serializable,
    run_sharded_stress,
    sibench_partition_map,
    smallbank_partition_map,
)
from repro.sim.direct import run_program  # noqa: E402
from repro.workloads import sibench  # noqa: E402

SHARD_COUNTS = (1, 2, 4)
QUICK_SHARD_COUNTS = (1, 2)
CUSTOMERS = 64
ITEMS = 64
THREADS = 4
TXNS_PER_THREAD = 25
WORKERS = 4
SEED = 20080808


def _level_common(result) -> dict:
    return {
        "txns": result.txns,
        "commits": result.commits,
        "aborts": result.aborts,
        "wall_clock_s": result.wall_clock_s,
        "throughput_commits_per_s": result.throughput,
        "serializable": result.serializable,
        "lock_tables_clean": result.lock_tables_clean,
    }


def _histogram_or_none(histogram: dict | None) -> dict | None:
    """An unpopulated histogram snapshot reports count 0 with a
    fabricated mean of 0.0 — on a level that never ran 2PC that reads
    as a measured zero-latency claim.  Report None instead; the check
    side rejects zero-count histogram objects outright."""
    if not histogram or not histogram.get("count"):
        return None
    return histogram


def run_smallbank(shards: int, cross_ratio: float) -> dict:
    pmap = smallbank_partition_map(shards, CUSTOMERS)
    with ShardCluster(pmap, workers=WORKERS) as cluster:
        result = run_sharded_stress(
            cluster.coordinator,
            customers=CUSTOMERS,
            threads=THREADS,
            txns_per_thread=TXNS_PER_THREAD,
            cross_ratio=cross_ratio,
            seed=SEED,
        )
        counters = result.metrics["counters"]["coordinator"]
        level = _level_common(result)
        level.update({
            "workload": "smallbank",
            "shards": shards,
            "cross_ratio": cross_ratio,
            "cross_shard_attempted": result.cross_shard_attempted,
            "single_shard_commits": counters["single_shard_commits"],
            "cross_shard_commits": counters["cross_shard_commits"],
            "cross_shard_unsafe": counters["cross_shard_unsafe"],
            "escalation_conflicts": counters["escalation_conflicts"],
            "shard_txn_counts": result.metrics["gauges"]["shard_txn_counts"],
            "twopc_latency": _histogram_or_none(
                result.metrics["histograms"].get("twopc_latency")
            ),
        })
        return level


def run_sibench(shards: int) -> dict:
    """4:1 update/query sibench: updates are single-shard point writes,
    queries are full scans — inherently cross-shard when shards > 1."""
    pmap = sibench_partition_map(shards, ITEMS)
    with ShardCluster(pmap, workers=WORKERS) as cluster:
        coordinator = cluster.coordinator
        sibench.setup_sibench(coordinator, ITEMS)

        barrier = threading.Barrier(THREADS)
        tally = threading.Lock()
        totals = {"commits": 0, "aborts": 0}
        failures: list[BaseException] = []

        def client(index: int) -> None:
            rng = random.Random(SEED * 100 + index)
            commits = aborts = 0
            barrier.wait()
            try:
                for _ in range(TXNS_PER_THREAD):
                    if rng.random() < 0.8:
                        program = sibench.update(rng.randrange(ITEMS))
                    else:
                        program = sibench.query()
                    try:
                        run_program(coordinator, program, "ssi")
                        commits += 1
                    except TransactionAbortedError:
                        aborts += 1
            except BaseException as error:  # noqa: BLE001
                with tally:
                    failures.append(error)
            finally:
                with tally:
                    totals["commits"] += commits
                    totals["aborts"] += aborts

        workers = [
            threading.Thread(target=client, args=(i,)) for i in range(THREADS)
        ]
        start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        wall = time.perf_counter() - start
        if failures:
            raise failures[0]

        report = check_merged_serializable(coordinator.shard_histories())
        audits = coordinator.audit_shards()
        counters = coordinator.metrics.snapshot()["counters"]["coordinator"]
        return {
            "workload": "sibench",
            "shards": shards,
            "txns": THREADS * TXNS_PER_THREAD,
            "commits": totals["commits"],
            "aborts": totals["aborts"],
            "wall_clock_s": wall,
            "throughput_commits_per_s": (
                totals["commits"] / wall if wall > 0 else 0.0
            ),
            "serializable": report.serializable,
            "lock_tables_clean": all(
                audit["granted"] == 0 and audit["waiters"] == 0
                and audit["siread"] == 0 and audit["prepared"] == 0
                for audit in audits
            ),
            "single_shard_commits": counters["single_shard_commits"],
            "cross_shard_commits": counters["cross_shard_commits"],
        }


def capture(shard_counts) -> dict:
    levels = []
    for shards in shard_counts:
        print(f"  smallbank routable x{shards} shards ...", flush=True)
        routable = run_smallbank(shards, cross_ratio=0.0)
        print(
            f"    {routable['commits']} commits "
            f"({routable['throughput_commits_per_s']:.0f}/s, "
            f"{routable['cross_shard_commits']} cross-shard)", flush=True,
        )
        levels.append(routable)
        if shards > 1:
            print(f"  smallbank mixed x{shards} shards ...", flush=True)
            mixed = run_smallbank(shards, cross_ratio=0.25)
            print(
                f"    {mixed['commits']} commits "
                f"({mixed['cross_shard_commits']} cross-shard 2PC, "
                f"{mixed['cross_shard_unsafe']} certification aborts)",
                flush=True,
            )
            levels.append(mixed)
        print(f"  sibench x{shards} shards ...", flush=True)
        si_level = run_sibench(shards)
        print(
            f"    {si_level['commits']} commits "
            f"({si_level['cross_shard_commits']} cross-shard)", flush=True,
        )
        levels.append(si_level)
    return {
        "benchmark": "sharded_throughput",
        "customers": CUSTOMERS,
        "items": ITEMS,
        "threads": THREADS,
        "workers_per_shard": WORKERS,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
        "levels": levels,
    }


def check_document(path: str) -> int:
    """CI gate over the committed capture (machine-independent except
    for the explicitly multi-core-only throughput ratio)."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    problems = []
    for field in ("python", "platform", "cpus"):
        if field not in document:
            problems.append(f"metadata field {field!r} missing")
    levels = document.get("levels", [])

    def find(workload, shards, **extra):
        for level in levels:
            if level.get("workload") != workload or level.get("shards") != shards:
                continue
            if all(level.get(k) == v for k, v in extra.items()):
                return level
        return None

    for level in levels:
        tag = f"{level.get('workload')} x{level.get('shards')}"
        if not level.get("serializable"):
            problems.append(f"{tag}: merged history not serializable")
        if not level.get("lock_tables_clean"):
            problems.append(f"{tag}: shard lock tables dirty")
        if level.get("commits", 0) <= 0:
            problems.append(f"{tag}: committed nothing")
        if level.get("commits", 0) + level.get("aborts", 0) != level.get(
                "txns", -1):
            problems.append(f"{tag}: lost transactions")
        histogram = level.get("twopc_latency")
        if histogram is not None and not histogram.get("count"):
            problems.append(
                f"{tag}: empty twopc_latency histogram recorded as data "
                f"(should be null when no 2PC ran)"
            )

    for shards in (1, 2, 4):
        routable = find("smallbank", shards, cross_ratio=0.0)
        if routable is None:
            problems.append(f"no routable smallbank capture at {shards} shards")
        elif routable.get("cross_shard_commits", -1) != 0:
            problems.append(
                f"routable smallbank x{shards}: fast path violated "
                f"({routable.get('cross_shard_commits')} cross-shard commits)"
            )
        if find("sibench", shards) is None:
            problems.append(f"no sibench capture at {shards} shards")

    for shards in (2, 4):
        mixed = find("smallbank", shards, cross_ratio=0.25)
        if mixed is None:
            problems.append(f"no mixed smallbank capture at {shards} shards")
        elif mixed.get("cross_shard_commits", 0) <= 0:
            problems.append(
                f"mixed smallbank x{shards}: no cross-shard 2PC commits"
            )
        elif not (mixed.get("twopc_latency") or {}).get("count"):
            problems.append(
                f"mixed smallbank x{shards}: 2PC commits ran but no "
                f"twopc_latency histogram was captured"
            )

    ratio_note = ""
    one = find("smallbank", 1, cross_ratio=0.0)
    four = find("smallbank", 4, cross_ratio=0.0)
    if one and four:
        ratio = (
            four["throughput_commits_per_s"]
            / max(one["throughput_commits_per_s"], 1e-9)
        )
        if document.get("cpus", 1) > 1:
            if ratio < 1.5:
                problems.append(
                    f"4-shard/1-shard routable throughput {ratio:.2f}x < 1.5x "
                    f"on a {document['cpus']}-cpu machine"
                )
            else:
                ratio_note = f", {ratio:.2f}x 4-vs-1-shard"
        else:
            ratio_note = (
                f", ratio gate skipped (1 cpu; measured {ratio:.2f}x)"
            )

    if problems:
        print(f"{path}: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"{path}: ok — all merged histories serializable, fast path "
          f"clean of 2PC{ratio_note}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", help="write the capture (strict JSON) here")
    parser.add_argument("--quick", action="store_true",
                        help="1 and 2 shards only (CI smoke)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate a committed capture instead of running")
    args = parser.parse_args(argv)

    if args.check:
        return check_document(args.check)

    shard_counts = QUICK_SHARD_COUNTS if args.quick else SHARD_COUNTS
    print(f"sharded throughput ({THREADS} client threads, "
          f"{WORKERS} workers/shard):")
    document = capture(shard_counts)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
