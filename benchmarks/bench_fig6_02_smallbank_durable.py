"""Figure 6.2 — Berkeley DB SmallBank with the log flushed at commit.

Paper result: the 10 ms commit flush makes everything I/O bound.  Group
commit lets throughput grow with MPL for all three levels; up to ~MPL 10
there is little separation, then S2PL drops behind as deadlock stalls
(detected only twice per second) freeze its lock queues.
"""

import pytest

from repro.bench.experiments import fig6_2

from conftest import run_figure

MPLS = [1, 5, 10, 20]


@pytest.mark.benchmark(group="fig6.2")
def test_fig6_2_smallbank_durable(benchmark):
    outcome = run_figure(benchmark, fig6_2(), MPLS)

    # I/O bound at MPL 1: writers cap near 100 commits/s (10 ms
    # flushes); read-only Bal transactions (20% of the mix) skip the
    # flush, lifting the total somewhat above that.
    for level in ("si", "ssi", "s2pl"):
        assert outcome.throughput(level, 1) <= 250

    # Group commit scales throughput with MPL for the multiversion levels.
    assert outcome.throughput("si", 20) > outcome.throughput("si", 1) * 4
    assert outcome.throughput("ssi", 20) > outcome.throughput("ssi", 1) * 4

    # SI ~ SSI; S2PL behind at MPL 20.
    assert outcome.throughput("ssi", 20) > outcome.throughput("si", 20) * 0.8
    assert outcome.throughput("s2pl", 20) < outcome.throughput("si", 20)
