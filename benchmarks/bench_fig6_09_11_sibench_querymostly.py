"""Figures 6.9-6.11 — InnoDB sibench, query-mostly workload (10 queries
per update), table sizes 10 / 100 / 1000 rows.

Paper result: with reads dominating, the advantage of non-blocking reads
compounds: SI leads, Serializable SI follows at a distance set by the
table size (SIREAD cost per row scanned), and S2PL trails because every
query serialises against the occasional update's flush window.
"""

import pytest

from repro.bench.experiments import fig6_9, fig6_10, fig6_11

from conftest import run_figure

MPLS = [1, 5, 10, 20]


@pytest.mark.benchmark(group="fig6.9")
def test_fig6_9_sibench_10_items_querymostly(benchmark):
    outcome = run_figure(benchmark, fig6_9(), MPLS)
    assert outcome.throughput("ssi", 20) > outcome.throughput("si", 20) * 0.7
    assert outcome.throughput("si", 20) > outcome.throughput("s2pl", 20) * 2
    # Queries dominate the commit mix ~10:1.
    mix = outcome.result("si", 20).commits_by_type
    assert mix.get("query", 0) > mix.get("update", 1) * 5


@pytest.mark.benchmark(group="fig6.10")
def test_fig6_10_sibench_100_items_querymostly(benchmark):
    outcome = run_figure(benchmark, fig6_10(), MPLS)
    assert outcome.throughput("si", 20) >= outcome.throughput("ssi", 20)
    assert outcome.throughput("si", 20) > outcome.throughput("s2pl", 20)


@pytest.mark.benchmark(group="fig6.11")
def test_fig6_11_sibench_1000_items_querymostly(benchmark):
    outcome = run_figure(benchmark, fig6_11(), [1, 5, 10])
    si, ssi = outcome.throughput("si", 10), outcome.throughput("ssi", 10)
    assert si > ssi  # per-row SIREAD cost on 1000-row scans
    # no rollbacks in sibench at any level
    for level in ("si", "ssi", "s2pl"):
        assert outcome.result(level, 10).cc_aborts == 0
