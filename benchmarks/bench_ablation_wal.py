"""Ablation: write-ahead logging overhead and recovery speed.

The paper's engines always log; here the cost is isolatable.  Measured:
per-commit overhead of logging (with and without flush-on-commit) and
redo-recovery throughput — the practical cost of the durability leg.
"""

import pytest

from repro import Database, EngineConfig
from repro.wal.log import WriteAheadLog
from repro.wal.recovery import recover_database


def run_traffic(db, rounds=300):
    db.create_table("t")
    db.load("t", ((i, 0) for i in range(64)))
    for index in range(rounds):
        txn = db.begin("ssi")
        txn.write("t", index % 64, index)
        txn.commit()


@pytest.mark.benchmark(group="ablation-wal")
@pytest.mark.parametrize("mode", ["off", "nosync", "sync"])
def test_commit_overhead(benchmark, mode):
    def run():
        wal = None if mode == "off" else WriteAheadLog()
        db = Database(
            EngineConfig(wal_flush_on_commit=(mode == "sync")), wal=wal
        )
        run_traffic(db)
        return db

    db = benchmark.pedantic(run, rounds=3, iterations=1)
    if mode != "off":
        assert db.wal.stats["appends"] >= 600  # write + commit per txn
    if mode == "sync":
        assert db.wal.stats["flushes"] >= 300


@pytest.mark.benchmark(group="wal-recovery")
def test_recovery_speed(benchmark):
    wal = WriteAheadLog()
    db = Database(EngineConfig(), wal=wal)
    run_traffic(db, rounds=1000)

    recovered = benchmark(lambda: recover_database(wal))
    # recovered state matches the latest committed values
    for key in range(64):
        assert (
            recovered.table("t").chain(key).latest().value
            == db.table("t").chain(key).latest().value
        )
