"""Ablations for the engine design choices the paper calls out:

* SIREAD->EXCLUSIVE upgrade (Section 3.7.3): without it, every
  read-modify-write transaction stays suspended after commit, bloating
  the lock table and the suspended list.
* Deferred snapshot allocation (Section 4.5): without it, concurrent
  single-row increments abort under first-committer-wins.
* Victim-selection policy (Section 3.7.2): pivot-first vs youngest-first.
"""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.ops import ReadForUpdate, Write
from repro.sim.scheduler import SimConfig, Simulator
from repro.sim.workload import Mix, Workload
from repro.workloads.smallbank import make_smallbank


def counter_workload(keys: int) -> Workload:
    def setup(db):
        db.create_table("c")
        db.load("c", ((i, 0) for i in range(keys)))

    def program(rng):
        key = rng.randrange(keys)
        value = yield ReadForUpdate("c", key)
        yield Write("c", key, value + 1)

    return Workload("counter", setup, Mix([("inc", 1.0, program)]))


def run_once(workload, engine_config, mpl=8, duration=0.4, isolation="ssi"):
    db = Database(engine_config)
    workload.setup(db)
    result = Simulator(
        db, workload, isolation, mpl, SimConfig(duration=duration, warmup=0.05)
    ).run()
    return db, result


@pytest.mark.benchmark(group="ablation-upgrade")
def test_siread_upgrade(benchmark):
    workload = make_smallbank(customers=400)

    def run():
        return {
            flag: run_once(workload, EngineConfig(siread_upgrade=flag))
            for flag in (True, False)
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for flag, (db, result) in outcomes.items():
        print(f"  upgrade={str(flag):<5} throughput={result.throughput:8.0f} "
              f"suspended_peak={db.stats['suspended_peak']} "
              f"siread_dropped={db.locks.stats['siread_dropped']}")
    with_upgrade_db, _ = outcomes[True]
    without_upgrade_db, _ = outcomes[False]
    # The optimisation drops SIREADs (and therefore suspends less).
    assert with_upgrade_db.locks.stats["siread_dropped"] > 0


@pytest.mark.benchmark(group="ablation-deferred-snapshot")
def test_deferred_snapshot(benchmark):
    workload = counter_workload(keys=2)  # hot counters

    def run():
        return {
            flag: run_once(workload, EngineConfig(deferred_snapshot=flag), isolation="si")
            for flag in (True, False)
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for flag, (_db, result) in outcomes.items():
        print(f"  deferred={str(flag):<5} throughput={result.throughput:8.0f} "
              f"conflicts={result.aborts['conflict']}")
    deferred = outcomes[True][1]
    eager = outcomes[False][1]
    # Section 4.5: single-statement updates never abort when deferred.
    assert deferred.aborts["conflict"] == 0
    assert eager.aborts["conflict"] > 0
    assert deferred.commits >= eager.commits


@pytest.mark.benchmark(group="ablation-victim")
@pytest.mark.parametrize("policy", ["pivot", "youngest", "oldest"])
def test_victim_policy(benchmark, policy):
    workload = make_smallbank(customers=100)

    def run():
        return run_once(
            workload,
            EngineConfig(victim_policy=policy, precise_conflicts=False),
            mpl=12,
        )

    _db, result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  policy={policy:<9} throughput={result.throughput:8.0f} "
          f"unsafe={result.aborts['unsafe']}")
    assert result.commits > 0
