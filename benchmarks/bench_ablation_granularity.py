"""Ablation: record vs page lock/version granularity (Chapter 4).

The Berkeley DB prototype locks pages; the InnoDB prototype locks rows.
Page granularity manufactures conflicts between unrelated rows sharing a
page — the source of Fig 6.4's false-positive overhead.  Same workload,
same isolation level, both granularities.
"""

import pytest

from repro.bench.harness import Experiment, run_experiment
from repro.engine.config import EngineConfig, LockGranularity
from repro.sim.scheduler import SimConfig
from repro.workloads.smallbank import make_smallbank


def granularity_experiment(granularity: LockGranularity) -> Experiment:
    return Experiment(
        exp_id=f"ablation.granularity.{granularity.value}",
        title=f"SmallBank SSI at {granularity.value} granularity",
        workload_factory=lambda: make_smallbank(customers=2000),
        engine_config_factory=lambda: EngineConfig(
            granularity=granularity, page_size=8, precise_conflicts=False
        ),
        sim_config=SimConfig(duration=0.6, warmup=0.1),
        levels=("ssi",),
        expectation="page locks inflate unsafe aborts on unrelated rows",
    )


@pytest.mark.benchmark(group="ablation-granularity")
def test_record_vs_page_granularity(benchmark):
    def run():
        return {
            granularity: run_experiment(
                granularity_experiment(granularity), mpls=[20]
            )
            for granularity in (LockGranularity.RECORD, LockGranularity.PAGE)
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rates = {}
    for granularity, outcome in outcomes.items():
        result = outcome.result("ssi", 20)
        rates[granularity] = result.abort_rate("unsafe")
        print(f"  {granularity.value:<7} throughput={result.throughput:8.0f} "
              f"unsafe/commit={rates[granularity]:.4f}")
    # Page granularity produces at least as many false positives on a
    # low-true-contention workload.
    assert rates[LockGranularity.PAGE] >= rates[LockGranularity.RECORD]
