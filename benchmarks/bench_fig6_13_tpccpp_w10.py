"""Figure 6.13 — InnoDB TPC-C++, 10 warehouses, standard scale, including
the year-to-date updates.

Paper result: the larger data volume spreads contention across
warehouses; all three levels move closer together, with the YTD hot rows
gating Payment throughput identically at SI and Serializable SI.
"""

import pytest

from repro.bench.experiments import fig6_13

from conftest import run_figure

MPLS = [1, 5, 10]


@pytest.mark.benchmark(group="fig6.13")
def test_fig6_13_tpccpp_w10(benchmark):
    outcome = run_figure(benchmark, fig6_13(), MPLS)

    # SSI tracks SI closely.
    assert outcome.throughput("ssi", 10) > outcome.throughput("si", 10) * 0.8

    # 10 warehouses: more concurrency headroom than W=1 -> throughput
    # grows with MPL for the multiversion levels.
    assert outcome.throughput("si", 10) > outcome.throughput("si", 1) * 2

    # With YTD updates on, write-write conflicts appear at SI/SSI.
    assert outcome.result("si", 10).aborts["conflict"] >= 0
