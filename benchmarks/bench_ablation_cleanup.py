"""Ablation: eager vs lazy cleanup of suspended committed transactions
(Sections 4.3.1 vs 4.6.1).

InnoDB-style eager cleanup scans the suspended list at every commit and
keeps the lock table minimal; Berkeley DB-style lazy cleanup defers the
work until a threshold, trading memory for commit-path cycles.  Measured:
suspended-list peak and lock-table size under each policy.
"""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.scheduler import SimConfig, Simulator
from repro.workloads.smallbank import make_smallbank


def run_policy(eager: bool, threshold: int = 64):
    workload = make_smallbank(customers=300)
    db = Database(
        EngineConfig(eager_cleanup=eager, cleanup_threshold=threshold)
    )
    workload.setup(db)
    result = Simulator(
        db, workload, "ssi", 10, SimConfig(duration=0.5, warmup=0.05)
    ).run()
    return db, result


@pytest.mark.benchmark(group="ablation-cleanup")
def test_eager_vs_lazy_cleanup(benchmark):
    def run():
        return {eager: run_policy(eager) for eager in (True, False)}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for eager, (db, result) in outcomes.items():
        label = "eager" if eager else "lazy"
        print(f"  {label:<6} throughput={result.throughput:8.0f} "
              f"suspended_peak={db.stats['suspended_peak']} "
              f"cleaned={db.stats['cleaned']} "
              f"final_lock_table={db.locks.table_size()}")

    eager_db, eager_result = outcomes[True]
    lazy_db, lazy_result = outcomes[False]
    # Lazy cleanup lets the suspended list grow far beyond eager's.
    assert lazy_db.stats["suspended_peak"] >= eager_db.stats["suspended_peak"]
    # Both policies keep the system functional (same order of throughput).
    assert lazy_result.throughput > eager_result.throughput * 0.5
