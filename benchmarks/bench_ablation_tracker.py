"""Ablation: basic boolean conflict flags vs enhanced commit-time-ordered
references (paper Section 3.6, Figs 3.9/3.10).

The enhanced tracker exists to kill the Fig 3.8 class of false positives.
Measured here: unsafe-abort rate and throughput of each tracker on the
same workload; the enhanced tracker must abort at most as often and never
less safely (both remain serializable — the test suite proves that; this
bench quantifies the abort saving).
"""

import pytest

from repro.bench.harness import Experiment, run_experiment
from repro.bench.report import format_throughput_table
from repro.engine.config import EngineConfig
from repro.sim.scheduler import SimConfig
from repro.workloads.smallbank import make_smallbank


def tracker_experiment(precise: bool) -> Experiment:
    return Experiment(
        exp_id=f"ablation.tracker.{'enhanced' if precise else 'basic'}",
        title=f"SmallBank under SSI, {'enhanced' if precise else 'basic'} tracker",
        workload_factory=lambda: make_smallbank(customers=200),
        engine_config_factory=lambda: EngineConfig(precise_conflicts=precise),
        sim_config=SimConfig(duration=0.6, warmup=0.1),
        levels=("ssi",),
        expectation="enhanced tracker: fewer unsafe aborts, >= throughput",
    )


@pytest.mark.benchmark(group="ablation-tracker")
def test_tracker_precision(benchmark):
    def run():
        return {
            precise: run_experiment(tracker_experiment(precise), mpls=[10, 20])
            for precise in (False, True)
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for precise, outcome in outcomes.items():
        label = "enhanced" if precise else "basic"
        result = outcome.result("ssi", 20)
        print(f"  {label:<9} MPL=20: {result.throughput:8.0f} commits/s, "
              f"unsafe={result.aborts['unsafe']}, "
              f"conflict={result.aborts['conflict']}")

    basic = outcomes[False].result("ssi", 20)
    enhanced = outcomes[True].result("ssi", 20)
    # The enhanced tracker never aborts more.
    assert enhanced.aborts["unsafe"] <= basic.aborts["unsafe"]
    assert enhanced.throughput >= basic.throughput * 0.9
