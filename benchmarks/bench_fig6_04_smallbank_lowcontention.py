"""Figure 6.4 — Berkeley DB SmallBank with 1/10th of the contention
(10x data), log flushed at commit.

Paper result: with conflicts rare, S2PL and SI become nearly identical;
Serializable SI runs 10-15% below them.  The gap is false-positive
"unsafe" aborts caused by *page-level* conflict granularity: unrelated
customers sharing a B+-tree page register rw-dependencies.  This is the
headline cost of the Berkeley DB prototype.
"""

import pytest

from repro.bench.experiments import fig6_4

from conftest import run_figure

MPLS = [1, 5, 10, 20]


@pytest.mark.benchmark(group="fig6.4")
def test_fig6_4_smallbank_low_contention(benchmark):
    outcome = run_figure(benchmark, fig6_4(), MPLS)

    # S2PL ~ SI at low contention (within 25%).
    si, s2pl = outcome.throughput("si", 20), outcome.throughput("s2pl", 20)
    assert s2pl > si * 0.75

    # SSI trails SI, but not catastrophically (paper: 10-15% overhead).
    ssi = outcome.throughput("ssi", 20)
    assert si * 0.6 < ssi <= si * 1.05

    # The SSI gap is attributable to unsafe aborts that SI does not have.
    assert outcome.result("ssi", 20).aborts["unsafe"] >= 0
    assert outcome.result("si", 20).aborts["unsafe"] == 0
