"""Figure 6.1 — Berkeley DB SmallBank, short transactions, no log flush.

Paper result: SI and Serializable SI nearly coincide and exceed S2PL by
roughly an order of magnitude at MPL 20 (S2PL suffers read/write blocking
plus periodic-only deadlock detection); Serializable SI's aborts are
mostly "unsafe" errors, its total error rate slightly above SI's.
"""

import pytest

from repro.bench.experiments import fig6_1

from conftest import run_figure

MPLS = [1, 2, 5, 10, 20]


@pytest.mark.benchmark(group="fig6.1")
def test_fig6_1_smallbank_short(benchmark):
    outcome = run_figure(benchmark, fig6_1(), MPLS)

    # SI and SSI comparable throughout (within 15%).
    for mpl in MPLS:
        si, ssi = outcome.throughput("si", mpl), outcome.throughput("ssi", mpl)
        assert ssi > si * 0.85

    # Both multiversion levels dominate S2PL heavily at MPL 20.
    assert outcome.throughput("si", 20) > outcome.throughput("s2pl", 20) * 5
    assert outcome.throughput("ssi", 20) > outcome.throughput("s2pl", 20) * 5

    # SSI's new error class appears; deadlocks are S2PL's failure mode.
    ssi_20 = outcome.result("ssi", 20)
    assert ssi_20.aborts["unsafe"] > 0
    assert outcome.result("si", 20).aborts["unsafe"] == 0
