"""Section 5.3.6's data-scaling table for TPC-C++.

The paper reports approximate data volumes per (W, scale) combination:

            W = 1     W = 10
  standard  120 MB    1.2 GB
  tiny        2 MB     20 MB

This bench regenerates the *row-count* side of that table from the
generator (this repo loads reduced cardinalities — DESIGN.md documents
the substitution — so the check is that the tiny/standard and W ratios
match the paper's, not the absolute megabytes), and times the loader.
"""

import pytest

from repro import Database, EngineConfig
from repro.workloads.tpcc import TpccScale, setup_tpcc


def total_rows(scale: TpccScale) -> int:
    return sum(scale.approx_rows().values())


@pytest.mark.benchmark(group="tab5.3.6")
def test_data_scaling_table(benchmark):
    combos = {
        ("standard", 1): TpccScale.standard(1),
        ("standard", 10): TpccScale.standard(10),
        ("tiny", 1): TpccScale.tiny(1),
        ("tiny", 10): TpccScale.tiny(10),
    }
    print("\n  rows by scale (paper table 5.3.6 analogue)")
    print(f"  {'scale':<10}{'W=1':>12}{'W=10':>12}")
    for name in ("standard", "tiny"):
        row = f"  {name:<10}"
        for warehouses in (1, 10):
            row += f"{total_rows(combos[(name, warehouses)]):>12,}"
        print(row)

    # Paper ratios: tiny divides customers by 30 and items by 100
    # relative to the full spec; here both scales are uniformly reduced,
    # so the tiny/standard *customer* ratio must be 3 and the overall
    # volume must scale linearly in W for warehouse-affine tables.
    std1, std10 = combos[("standard", 1)], combos[("standard", 10)]
    tiny1 = combos[("tiny", 1)]
    assert std1.customers_per_district == 3 * tiny1.customers_per_district
    assert std1.items == 10 * tiny1.items
    assert std10.approx_rows()["customer"] == 10 * std1.approx_rows()["customer"]
    assert std10.approx_rows()["stock"] == 10 * std1.approx_rows()["stock"]

    # Benchmark the loader at tiny W=1 (the setup cost every TPC-C++
    # simulation pays).
    def load():
        db = Database(EngineConfig())
        setup_tpcc(db, TpccScale.tiny(1))
        return db

    db = benchmark(load)
    assert len(db.table("customer")) == 1000
