"""Figure 6.12 — InnoDB TPC-C++, 1 warehouse, skipping year-to-date
updates.

Paper result: Serializable SI stays within ~10% of SI across the MPL
sweep; S2PL falls behind once concurrency rises, because its readers
stall inside writers' commit-flush windows.  Unsafe aborts exist but are
rare relative to commits.
"""

import pytest

from repro.bench.experiments import fig6_12

from conftest import run_figure

MPLS = [1, 5, 10, 20]


@pytest.mark.benchmark(group="fig6.12")
def test_fig6_12_tpccpp_w1_noytd(benchmark):
    outcome = run_figure(benchmark, fig6_12(), MPLS)

    # SSI within ~10% of SI (allow 15% noise margin at small durations).
    for mpl in (10, 20):
        si, ssi = outcome.throughput("si", mpl), outcome.throughput("ssi", mpl)
        assert ssi > si * 0.85, (mpl, si, ssi)

    # S2PL behind the multiversion levels at high MPL.
    assert outcome.throughput("s2pl", 20) < outcome.throughput("si", 20)

    # The unsafe error rate stays small (paper: <1% in most cases).
    ssi_20 = outcome.result("ssi", 20)
    assert ssi_20.abort_rate("unsafe") < 0.10
