"""Figure 6.17 — InnoDB TPC-C++ Stock Level Mix, 10 warehouses.

Ten Stock Level queries per New Order: roughly 100 rows read per row
written (Section 5.3.5), the regime where multiversion reads matter most.

Paper result: SI and Serializable SI clearly ahead of S2PL — Stock Level
queries at S2PL block on every stock row a concurrent New Order has
updated until its commit flush completes; Serializable SI pays the
lock-manager cost of SIREAD'ing every row it reads.
"""

import pytest

from repro.bench.experiments import fig6_17

from conftest import run_figure

MPLS = [1, 5, 10]


@pytest.mark.benchmark(group="fig6.17")
def test_fig6_17_stocklevel_w10(benchmark):
    outcome = run_figure(benchmark, fig6_17(), MPLS)

    si, ssi, s2pl = (outcome.throughput(level, 10) for level in ("si", "ssi", "s2pl"))
    # Multiversion levels beat S2PL in the read-dominated mix.
    assert si > s2pl
    assert ssi > s2pl * 0.9
    # SSI below SI by its SIREAD cost, but in the same league.
    assert ssi > si * 0.6

    # the mix really is read-dominated
    mix = outcome.result("si", 10).commits_by_type
    assert mix.get("SLEV", 0) > mix.get("NEWO", 1) * 4
