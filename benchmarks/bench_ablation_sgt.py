"""Ablation: Serializable SI vs a true SGT certifier (Section 2.7).

SGT is the "elegant but impractical" precise alternative: it aborts only
on real cycles (no false positives) but pays a graph walk per conflict
and must retain committed transactions' read/write information.  Measured
here: abort counts (SGT <= SSI) and the cycle-check traffic that makes
the paper dismiss it for a data server's innermost loop.
"""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.scheduler import SimConfig, Simulator
from repro.workloads.smallbank import make_smallbank


def run_level(level):
    workload = make_smallbank(customers=150)
    db = Database(EngineConfig())
    workload.setup(db)
    result = Simulator(
        db, workload, level, 10, SimConfig(duration=0.5, warmup=0.05)
    ).run()
    return db, result


@pytest.mark.benchmark(group="ablation-sgt")
def test_sgt_vs_ssi(benchmark):
    def run():
        return {level: run_level(level) for level in ("ssi", "sgt")}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for level, (db, result) in outcomes.items():
        extra = ""
        if level == "sgt":
            extra = (f" cycle_checks={db.certifier.stats['cycle_checks']}"
                     f" edges={db.certifier.stats['edges']}")
        print(f"  {level:<4} throughput={result.throughput:8.0f} "
              f"unsafe={result.aborts['unsafe']}{extra}")

    sgt_db, sgt_result = outcomes["sgt"]
    _ssi_db, ssi_result = outcomes["ssi"]
    # The certifier performs a cycle check per recorded dependency — the
    # cost Section 2.7 quotes Weikum & Vossen about.
    assert sgt_db.certifier.stats["cycle_checks"] > 0
    # Precision: SGT aborts at most as many transactions as SSI (its
    # unsafe aborts are true cycles only).
    assert sgt_result.aborts["unsafe"] <= max(1, ssi_result.aborts["unsafe"]) * 2
