"""Figure 6.14 — InnoDB TPC-C++, 10 warehouses, skipping year-to-date
updates.

Paper result: without the w_ytd/d_ytd hot rows, Payment loses its
write-write bottleneck; Serializable SI tracks SI closely and S2PL sits
below both at higher MPL.
"""

import pytest

from repro.bench.experiments import fig6_14

from conftest import run_figure

MPLS = [1, 5, 10]


@pytest.mark.benchmark(group="fig6.14")
def test_fig6_14_tpccpp_w10_noytd(benchmark):
    outcome = run_figure(benchmark, fig6_14(), MPLS)

    assert outcome.throughput("ssi", 10) > outcome.throughput("si", 10) * 0.85
    assert outcome.throughput("s2pl", 10) <= outcome.throughput("si", 10) * 1.02

    # Removing YTD lowers the conflict-abort rate relative to commits.
    si_10 = outcome.result("si", 10)
    assert si_10.abort_rate("conflict") < 0.2
