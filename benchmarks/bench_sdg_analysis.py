"""Static-analysis benchmarks: SDG derivation for the paper's suites.

Regenerates Figures 2.8 (TPC-C), 2.9/2.10 (SmallBank and its PromoteBW
fix) and 5.3 (TPC-C++) as computed artefacts, and times the analysis —
the cost that Section 1.3 argues must be re-paid on every application
change, motivating the runtime algorithm.
"""

import pytest

from repro.analysis import build_sdg, smallbank_specs, tpcc_specs, tpccpp_specs


@pytest.mark.benchmark(group="sdg")
def test_sdg_smallbank(benchmark):
    sdg = benchmark(lambda: build_sdg(smallbank_specs()))
    print("\n  SmallBank pivots:", sdg.pivots())
    assert sdg.pivots() == ["WC"]


@pytest.mark.benchmark(group="sdg")
def test_sdg_smallbank_promote_bw(benchmark):
    sdg = benchmark(lambda: build_sdg(smallbank_specs("promote_bw")))
    print("\n  PromoteBW pivots:", sdg.pivots() or "none (Fig 2.10)")
    assert sdg.is_serializable_under_si()


@pytest.mark.benchmark(group="sdg")
def test_sdg_tpcc(benchmark):
    sdg = benchmark(lambda: build_sdg(tpcc_specs()))
    print("\n  TPC-C pivots:", sdg.pivots() or "none (Fig 2.8)")
    assert sdg.is_serializable_under_si()


@pytest.mark.benchmark(group="sdg")
def test_sdg_tpccpp(benchmark):
    sdg = benchmark(lambda: build_sdg(tpccpp_specs()))
    print("\n  TPC-C++ pivots:", sdg.pivots())
    assert sdg.pivots() == ["CCHECK", "NEWO"]
