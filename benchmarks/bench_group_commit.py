#!/usr/bin/env python
"""Group-commit benchmark (PR 9): batching on vs off under concurrency.

The claim under test: with a file-backed write-ahead log flushed on
commit, the :class:`~repro.engine.groupcommit.CommitBatcher` amortises
certification latching and — dominantly — the per-commit WAL flush, so
commit throughput under concurrent committers beats the one-at-a-time
path by >= 1.3x at 64 sessions.  At 1 session groups degenerate to
size 1 and the two paths should be comparable (the collect window is
skipped for a lone committer only when the queue fills — the 200 us
window is the worst case).

Workload: disjoint-key small write transactions (2 writes each) driven
through the session scheduler — committers suspend on their group
ticket instead of parking worker threads, so 64 sessions ride 4
workers.  Every benchmarked history is MVSG-certified serializable and
every lock table must drain clean.

Results land in strict JSON (``--out BENCH_PR9.json``) with the machine
fingerprint.  The CI gate (``--check``) validates the committed
document machine-independently: the on/off ratio is within-document,
so it holds on any machine class.

Usage::

    PYTHONPATH=src python benchmarks/bench_group_commit.py --out BENCH_PR9.json
    PYTHONPATH=src python benchmarks/bench_group_commit.py --quick
    PYTHONPATH=src python benchmarks/bench_group_commit.py --check BENCH_PR9.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine.config import EngineConfig  # noqa: E402
from repro.exec import run_session_stress  # noqa: E402
from repro.sim.ops import Write  # noqa: E402
from repro.sim.workload import Mix, Workload  # noqa: E402
from repro.wal.log import WriteAheadLog  # noqa: E402

SESSION_COUNTS = (1, 8, 64)
WORKERS = 4
TXNS_PER_SESSION = {1: 64, 8: 24, 64: 8}
QUICK_TXNS_PER_SESSION = {1: 16, 8: 8, 64: 4}
SEED = 20090909
TABLE = "gc"

#: the 64-session on/off throughput ratio the committed capture must meet
RATIO_GATE = 1.3


def make_workload() -> Workload:
    """Disjoint-key writers: no ww/rw conflicts, so every difference
    between the two arms is commit-pipeline cost, not abort noise."""
    keys = itertools.count()

    def writer(_rng):
        base = next(keys) * 2
        yield Write(TABLE, base, base)
        yield Write(TABLE, base + 1, base)

    return Workload(
        "group_commit_writes",
        setup=lambda db: db.create_table(TABLE),
        mix=Mix(entries=(("write2", 1.0, writer),)),
    )


def run_level(sessions: int, group: bool, txns_per_session: int) -> dict:
    wal_path = tempfile.NamedTemporaryFile(suffix=".wal", delete=False).name
    config = EngineConfig(
        wal_flush_on_commit=True,
        group_commit=group,
        group_commit_max=16,
        group_commit_wait_us=200,
        record_history=True,
    )
    holder = {}

    def attach_wal(db):
        db.wal = WriteAheadLog(path=wal_path)
        holder["db"] = db

    try:
        result = run_session_stress(
            make_workload(),
            level="ssi",
            sessions=sessions,
            workers=WORKERS,
            txns_per_session=txns_per_session,
            seed=SEED,
            config=config,
            check_serializability=True,
            on_database=attach_wal,
        )
    finally:
        if os.path.exists(wal_path):
            os.unlink(wal_path)
    db = holder["db"]
    wal_stats = dict(db.wal.stats)
    snapshot = db.metrics.snapshot()["counters"]
    batcher = snapshot.get("group_commit", {})
    return {
        "sessions": sessions,
        "group_commit": group,
        "txns": result.txns,
        "commits": result.commits,
        "aborts": result.aborts,
        "wall_clock_s": result.wall_clock_s,
        "throughput_commits_per_s": (
            result.commits / result.wall_clock_s
            if result.wall_clock_s > 0 else 0.0
        ),
        "serializable": result.serializable,
        "lock_table_clean": (
            result.residual_granted == 0
            and result.residual_waiters == 0
            and result.residual_siread == 0
        ),
        "wal_flushes": wal_stats["flushes"],
        "wal_appends": wal_stats["appends"],
        "batches": batcher.get("batches", 0),
        "batched_txns": batcher.get("batched_txns", 0),
    }


def capture(txns_per_session: dict[int, int]) -> dict:
    levels = []
    for sessions in SESSION_COUNTS:
        for group in (False, True):
            tag = "group" if group else "serial"
            print(f"  {sessions} sessions, {tag} ...", flush=True)
            level = run_level(sessions, group, txns_per_session[sessions])
            print(
                f"    {level['commits']} commits "
                f"({level['throughput_commits_per_s']:.0f}/s, "
                f"{level['wal_flushes']} flushes)", flush=True,
            )
            levels.append(level)
    return {
        "benchmark": "group_commit",
        "workers": WORKERS,
        "group_commit_max": 16,
        "group_commit_wait_us": 200,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
        "levels": levels,
    }


def check_document(path: str) -> int:
    """CI gate over the committed capture.  Correctness claims and the
    within-document on/off throughput ratio — both machine-independent."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    problems = []
    for field in ("python", "platform", "cpus"):
        if field not in document:
            problems.append(f"metadata field {field!r} missing")
    levels = document.get("levels", [])

    def find(sessions, group):
        for level in levels:
            if (level.get("sessions") == sessions
                    and level.get("group_commit") is group):
                return level
        return None

    for level in levels:
        tag = (f"{level.get('sessions')} sessions "
               f"{'group' if level.get('group_commit') else 'serial'}")
        if not level.get("serializable"):
            problems.append(f"{tag}: history not MVSG-serializable")
        if not level.get("lock_table_clean"):
            problems.append(f"{tag}: lock table dirty after quiesce")
        if level.get("commits", 0) <= 0:
            problems.append(f"{tag}: committed nothing")
        if level.get("commits", 0) + level.get("aborts", 0) != level.get(
                "txns", -1):
            problems.append(f"{tag}: lost transactions")

    for sessions in SESSION_COUNTS:
        for group in (False, True):
            if find(sessions, group) is None:
                problems.append(
                    f"no capture at {sessions} sessions, group={group}"
                )

    grouped = find(64, True)
    serial = find(64, False)
    ratio = None
    if grouped and serial:
        if grouped.get("batched_txns", 0) <= 0:
            problems.append("64-session group arm never batched a commit")
        if grouped.get("wal_flushes", 0) >= serial.get("wal_flushes", 1):
            problems.append(
                "group arm did not amortise WAL flushes "
                f"({grouped.get('wal_flushes')} vs {serial.get('wal_flushes')})"
            )
        ratio = (
            grouped["throughput_commits_per_s"]
            / max(serial["throughput_commits_per_s"], 1e-9)
        )
        if ratio < RATIO_GATE:
            problems.append(
                f"64-session group/serial throughput {ratio:.2f}x "
                f"< {RATIO_GATE}x"
            )

    if problems:
        print(f"{path}: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    note = f", {ratio:.2f}x at 64 sessions" if ratio is not None else ""
    print(f"{path}: ok — all histories serializable, lock tables "
          f"clean{note}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", help="write the capture (strict JSON) here")
    parser.add_argument("--quick", action="store_true",
                        help="smaller per-session counts (CI smoke)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate a committed capture instead of running")
    args = parser.parse_args(argv)

    if args.check:
        return check_document(args.check)

    txns = QUICK_TXNS_PER_SESSION if args.quick else TXNS_PER_SESSION
    print(f"group commit ({WORKERS} scheduler workers, file-backed WAL):")
    document = capture(txns)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
