"""Figure 6.15 — InnoDB TPC-C++, 10 warehouses, *tiny* data scaling
(customers/30, items/100), including year-to-date updates.

Paper result: the tiny scale concentrates contention (high-contention
regime): first-committer-wins conflicts rise sharply at SI and
Serializable SI while S2PL serialises through blocking instead of
aborting; Serializable SI stays close to SI throughout.
"""

import pytest

from repro.bench.experiments import fig6_15

from conftest import run_figure

MPLS = [1, 5, 10]


@pytest.mark.benchmark(group="fig6.15")
def test_fig6_15_tpccpp_tiny(benchmark):
    outcome = run_figure(benchmark, fig6_15(), MPLS)

    # SSI tracks SI even under heavy contention.
    assert outcome.throughput("ssi", 10) > outcome.throughput("si", 10) * 0.75

    # High contention: SI/SSI pay update conflicts that S2PL does not.
    si_10 = outcome.result("si", 10)
    s2pl_10 = outcome.result("s2pl", 10)
    assert si_10.aborts["conflict"] > 0
    assert s2pl_10.aborts["conflict"] == 0
