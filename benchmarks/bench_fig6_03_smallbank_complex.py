"""Figure 6.3 — Berkeley DB SmallBank, complex transactions (10 ops each),
log flushed at commit.

Paper result: transactions do ten times the work but still flush once, so
the curves resemble Figure 6.2 — the workload stays I/O bound.  SSI's
error rate rises (longer transactions, more rw-conflicts).
"""

import pytest

from repro.bench.experiments import fig6_2, fig6_3

from conftest import run_figure

MPLS = [1, 5, 10, 20]


@pytest.mark.benchmark(group="fig6.3")
def test_fig6_3_smallbank_complex(benchmark):
    outcome = run_figure(benchmark, fig6_3(), MPLS)

    # Still I/O bound at MPL 1 despite 10x work per transaction.
    assert outcome.throughput("si", 1) <= 150

    # Group commit still scales SI/SSI.
    assert outcome.throughput("si", 20) > outcome.throughput("si", 1) * 3

    # SSI close to SI.
    assert outcome.throughput("ssi", 20) > outcome.throughput("si", 20) * 0.7

    # Longer transactions raise the conflict rate vs the short workload.
    ssi_20 = outcome.result("ssi", 20)
    assert ssi_20.cc_aborts > 0
