"""Figure 6.16 — InnoDB TPC-C++, tiny data scaling, skipping year-to-date
updates.

Paper result: dropping the YTD hot rows removes most write-write
conflicts; SI and Serializable SI recover relative to S2PL compared with
Figure 6.15.
"""

import pytest

from repro.bench.experiments import fig6_15, fig6_16

from conftest import run_figure

MPLS = [1, 5, 10]


@pytest.mark.benchmark(group="fig6.16")
def test_fig6_16_tpccpp_tiny_noytd(benchmark):
    outcome = run_figure(benchmark, fig6_16(), MPLS)

    assert outcome.throughput("ssi", 10) > outcome.throughput("si", 10) * 0.8

    # Conflict rate drops versus the YTD-on configuration.
    noytd_rate = outcome.result("si", 10).abort_rate("conflict")
    from repro.bench.harness import run_experiment
    with_ytd = run_experiment(fig6_15(), mpls=[10], levels=["si"])
    ytd_rate = with_ytd.result("si", 10).abort_rate("conflict")
    assert noytd_rate <= ytd_rate + 0.02
