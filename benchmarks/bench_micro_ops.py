"""Micro-benchmarks: per-operation engine overhead by isolation level.

The paper's implementation chapters stress that Serializable SI adds only
small, localised costs (Sections 4.3.2, 4.6.2).  These measure the *real*
Python-level latency of point reads, writes and scans under each level —
the one place in this suite where wall-clock time, not simulated time, is
the quantity of interest.
"""

import pytest

from repro import Database, EngineConfig


def make_db(rows=1000):
    db = Database(EngineConfig())
    db.create_table("t")
    db.load("t", ((i, i) for i in range(rows)))
    return db


@pytest.mark.benchmark(group="micro-read")
@pytest.mark.parametrize("level", ["si", "ssi", "s2pl", "sgt"])
def test_point_read(benchmark, level):
    db = make_db()

    def one_txn():
        txn = db.begin(level)
        txn.read("t", 500)
        txn.commit()

    benchmark(one_txn)


@pytest.mark.benchmark(group="micro-write")
@pytest.mark.parametrize("level", ["si", "ssi", "s2pl"])
def test_point_update(benchmark, level):
    db = make_db()

    def one_txn():
        txn = db.begin(level)
        txn.write("t", 500, 1)
        txn.commit()

    benchmark(one_txn)


@pytest.mark.benchmark(group="micro-scan")
@pytest.mark.parametrize("level", ["si", "ssi", "s2pl"])
def test_scan_100(benchmark, level):
    db = make_db()

    def one_txn():
        txn = db.begin(level)
        txn.scan("t", 100, 199)
        txn.commit()

    benchmark(one_txn)


@pytest.mark.benchmark(group="micro-rmw")
@pytest.mark.parametrize("level", ["si", "ssi", "s2pl"])
def test_read_modify_write(benchmark, level):
    db = make_db()

    def one_txn():
        txn = db.begin(level)
        value = txn.read_for_update("t", 500)
        txn.write("t", 500, value + 1)
        txn.commit()

    benchmark(one_txn)
