"""Ablation: SI queries mixed with Serializable SI updates (Section 3.8).

Running read-only transactions at plain SI removes their SIREAD overhead
and any chance of queries aborting, at the cost of letting queries see
non-serializable states (the read-only anomaly).  The paper expects this
configuration to be popular in practice; measured here against all-SSI on
the read-heavy sibench query-mostly mix.
"""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.scheduler import SimConfig, Simulator
from repro.workloads.sibench import make_sibench


def run_mode(overrides):
    workload = make_sibench(items=300, queries_per_update=10)
    db = Database(EngineConfig())
    workload.setup(db)
    simulator = Simulator(
        db, workload, "ssi", 10,
        SimConfig(duration=0.5, warmup=0.05),
        isolation_overrides=overrides,
    )
    return simulator.run()


@pytest.mark.benchmark(group="ablation-si-queries")
def test_si_queries_among_ssi_updates(benchmark):
    def run():
        return {
            "all-ssi": run_mode(None),
            "si-queries": run_mode({"query": "si"}),
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, result in outcomes.items():
        print(f"  {label:<11} throughput={result.throughput:8.0f} "
              f"unsafe={result.aborts['unsafe']}")
    # Dropping SIREADs from 10/11ths of the load must help throughput.
    assert outcomes["si-queries"].throughput > outcomes["all-ssi"].throughput
