#!/usr/bin/env python
"""Reporting-mix benchmark (PR 10): the vectorized scan kernel under a
TPC-H-flavored read-mostly workload.

Three sections, one JSON document:

* ``scan_speedup`` — serial wide scans of the scale-factor lineitem
  table under three arms: the per-row scan path (``scan_kernel=False``),
  the chunked kernel with record-granularity SIREADs, and the chunked
  kernel with the page-SIREAD threshold engaged.  The CI gate holds the
  kernel's wide-scan configuration (chunked + page threshold, the shape
  every reporting scan crosses) to >= 1.5x over the per-row path, and
  the record-granularity kernel to no-regression.  Lock-manager grant
  cost dominates record-granularity scans in either path, which is
  exactly why the threshold arm is the kernel's headline: it replaces
  ~2 lock grants per row with ~1 per 32 rows.
* ``lock_bound`` — peak lock-table size while an SSI scan of width N is
  live: record-granularity cost is ~2N+1, page-granularity cost is
  ~N/page_order — the Section 4.6 trade made scan-shaped.
* ``mixes`` — the reporting mix (5 report queries + order-entry OLTP +
  a SmallBank side stream) under real threads, swept over reader level
  (``ssi`` / ``ssi-ro`` / ``deferrable``) x scan arm, with per-query
  latency; every cell must be MVSG-serializable with a clean lock
  table.

Usage::

    PYTHONPATH=src python benchmarks/bench_reporting_mix.py --out BENCH_PR10.json
    PYTHONPATH=src python benchmarks/bench_reporting_mix.py --quick
    PYTHONPATH=src python benchmarks/bench_reporting_mix.py --check BENCH_PR10.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine.config import EngineConfig  # noqa: E402
from repro.engine.database import Database  # noqa: E402
from repro.errors import TransactionAbortedError  # noqa: E402
from repro.sgt.checker import check_serializable  # noqa: E402
from repro.sim.direct import run_program  # noqa: E402
from repro.workloads.reporting import (  # noqa: E402
    LINEITEM,
    make_reporting_mix,
    setup_reporting,
)

SEED = 20100808

#: the wide-scan arm (chunked kernel + page threshold) vs per-row gate
RATIO_GATE = 1.5
#: record-granularity kernel must not regress vs per-row
NO_REGRESSION_GATE = 0.9
#: page arm must cut lock-table cost at the widest scan by at least this
LOCK_REDUCTION_GATE = 4.0

PAGE_THRESHOLD = 64
SCAN_ARMS = {
    # scan_kernel, scan_page_lock_threshold
    "per_row": (False, None),
    "chunked": (True, None),
    "paged": (True, PAGE_THRESHOLD),
}

SPEEDUP_SCALE, SPEEDUP_REPS = 8, 5
LOCK_WIDTHS = (256, 1024, 4096)
MIX_SCALE, MIX_THREADS, MIX_TXNS = 1, 3, 24
READER_LEVELS = ("ssi", "ssi-ro", "deferrable")
REPORT_QUERIES = (
    "q1_pricing_summary", "q3_top_orders", "q5_region_revenue",
    "q6_revenue_band", "q_recent_orders",
)

QUICK = {
    "speedup_scale": 2, "speedup_reps": 2,
    "lock_widths": (256, 512), "mix_txns": 6,
}


def arm_config(arm: str, **extra) -> EngineConfig:
    kernel, threshold = SCAN_ARMS[arm]
    return EngineConfig(
        scan_kernel=kernel, scan_page_lock_threshold=threshold, **extra
    )


# ------------------------------------------------------------ scan_speedup

def run_speedup(scale: int, reps: int) -> dict:
    arms = {}
    for arm in SCAN_ARMS:
        db = Database(arm_config(arm))
        setup_reporting(db, scale)
        rows = None
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            txn = db.begin("ssi")
            rows = db.scan(txn, LINEITEM)
            db.abort(txn)  # release SIREADs so each rep is steady-state
            best = min(best, time.perf_counter() - start)
            db.cleanup_suspended()
        arms[arm] = {"best_scan_s": best, "rows": len(rows)}
        print(f"    {arm}: {best * 1e3:.2f} ms for {len(rows)} rows",
              flush=True)
    per_row = arms["per_row"]["best_scan_s"]
    return {
        "scale": scale,
        "reps": reps,
        "arms": arms,
        "chunked_speedup": per_row / max(arms["chunked"]["best_scan_s"], 1e-9),
        "paged_speedup": per_row / max(arms["paged"]["best_scan_s"], 1e-9),
    }


# -------------------------------------------------------------- lock_bound

def run_lock_bound(widths: tuple[int, ...]) -> dict:
    sweeps = []
    for width in widths:
        entry = {"width": width}
        for arm in ("chunked", "paged"):
            db = Database(arm_config(arm))
            db.create_table("wide")
            db.load("wide", ((key, key) for key in range(width)))
            txn = db.begin("ssi")
            db.scan(txn, "wide")
            entry["record_locks" if arm == "chunked" else "page_locks"] = (
                db.locks.table_size()
            )
            db.abort(txn)
        print(f"    width {width}: {entry['record_locks']} record locks "
              f"vs {entry['page_locks']} page locks", flush=True)
        sweeps.append(entry)
    return {"widths": sweeps}


# ------------------------------------------------------------------- mixes

def run_mix_cell(arm: str, reader_level: str, txns_per_thread: int) -> dict:
    """One cell of the mixes grid: the reporting+smallbank mix under
    real threads; report queries run at ``reader_level``, everything
    else as plain read-write SSI."""
    config = arm_config(arm, record_history=True)
    db = Database(config)
    workload = make_reporting_mix(scale=MIX_SCALE, oltp="smallbank")
    workload.setup(db)

    tally = threading.Lock()
    latency: dict[str, list[float]] = {}
    counts: dict[str, list[int]] = {}
    failures: list[BaseException] = []
    barrier = threading.Barrier(MIX_THREADS)

    def begin_reader():
        if reader_level == "ssi-ro":
            return db.begin("ssi", read_only=True)
        if reader_level == "deferrable":
            return db.begin("ssi", read_only=True, deferrable=True)
        return None  # plain rw SSI, run_program begins it

    def client(index: int) -> None:
        rng = random.Random(SEED * 1000 + index)
        barrier.wait()
        try:
            for _ in range(txns_per_thread):
                name, program = workload.next_transaction(rng)
                is_report = name in REPORT_QUERIES
                start = time.perf_counter()
                try:
                    txn = begin_reader() if is_report else None
                    run_program(db, program, "ssi", txn=txn)
                    if txn is not None:
                        # run_program only commits transactions it began
                        # itself; a passed-in reader is ours to finish.
                        txn.commit()
                    committed = True
                except TransactionAbortedError:
                    committed = False
                elapsed = time.perf_counter() - start
                with tally:
                    latency.setdefault(name, []).append(elapsed)
                    bucket = counts.setdefault(name, [0, 0])
                    bucket[0 if committed else 1] += 1
        except BaseException as exc:
            with tally:
                failures.append(exc)

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(MIX_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if failures:
        raise failures[0]

    db.cleanup_suspended()
    lm = db.locks
    report = check_serializable(db.history)
    queries = {}
    for name, samples in sorted(latency.items()):
        samples.sort()
        commits, aborts = counts[name]
        queries[name] = {
            "commits": commits,
            "aborts": aborts,
            "mean_ms": sum(samples) / len(samples) * 1e3,
            "p95_ms": samples[min(len(samples) - 1,
                                  int(len(samples) * 0.95))] * 1e3,
        }
    commits = sum(bucket[0] for bucket in counts.values())
    aborts = sum(bucket[1] for bucket in counts.values())
    return {
        "arm": arm,
        "reader_level": reader_level,
        "threads": MIX_THREADS,
        "txns": commits + aborts,
        "commits": commits,
        "aborts": aborts,
        "wall_clock_s": wall,
        "throughput_commits_per_s": commits / wall if wall > 0 else 0.0,
        "serializable": report.serializable,
        "lock_table_clean": (
            lm.table_size() == 0
            and len(lm._waiting) == 0
            and lm.siread_lock_count() == 0
        ),
        "queries": queries,
    }


def run_mixes(txns_per_thread: int) -> list[dict]:
    cells = []
    for arm in SCAN_ARMS:
        for reader_level in READER_LEVELS:
            print(f"    {arm} / {reader_level} ...", flush=True)
            cell = run_mix_cell(arm, reader_level, txns_per_thread)
            verdict = "serializable" if cell["serializable"] else "UNSAFE"
            print(f"      {cell['commits']} commits / {cell['aborts']} "
                  f"aborts ({verdict})", flush=True)
            cells.append(cell)
    return cells


def capture(quick: bool) -> dict:
    scale = QUICK["speedup_scale"] if quick else SPEEDUP_SCALE
    reps = QUICK["speedup_reps"] if quick else SPEEDUP_REPS
    widths = QUICK["lock_widths"] if quick else LOCK_WIDTHS
    mix_txns = QUICK["mix_txns"] if quick else MIX_TXNS
    print("  scan speedup:", flush=True)
    speedup = run_speedup(scale, reps)
    print("  lock bound:", flush=True)
    lock_bound = run_lock_bound(widths)
    print("  mixes:", flush=True)
    mixes = run_mixes(mix_txns)
    return {
        "benchmark": "reporting_mix",
        "page_threshold": PAGE_THRESHOLD,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
        "scan_speedup": speedup,
        "lock_bound": lock_bound,
        "mixes": mixes,
    }


# ------------------------------------------------------------------- check

def check_document(path: str) -> int:
    """CI gate over the committed capture — within-document ratios and
    correctness verdicts only, so it holds on any machine class."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    problems = []
    for field in ("python", "platform", "cpus"):
        if field not in document:
            problems.append(f"metadata field {field!r} missing")

    speedup = document.get("scan_speedup", {})
    paged = speedup.get("paged_speedup", 0.0)
    chunked = speedup.get("chunked_speedup", 0.0)
    if paged < RATIO_GATE:
        problems.append(
            f"kernel wide-scan (paged) speedup {paged:.2f}x < {RATIO_GATE}x"
        )
    if chunked < NO_REGRESSION_GATE:
        problems.append(
            f"record-granularity kernel regressed: {chunked:.2f}x "
            f"< {NO_REGRESSION_GATE}x"
        )

    sweeps = document.get("lock_bound", {}).get("widths", [])
    if not sweeps:
        problems.append("lock_bound sweep missing")
    for entry in sweeps:
        width = entry.get("width", 0)
        record = entry.get("record_locks", 0)
        page = entry.get("page_locks", 0)
        if page <= 0 or record <= 0:
            problems.append(f"width {width}: empty lock counts")
            continue
        # Page cost is pages-not-rows: bounded by width/page_order (with
        # half-full-leaf slack), independent of the per-row count.
        if page > width // 16 + 8:
            problems.append(
                f"width {width}: page arm took {page} locks "
                f"(> {width // 16 + 8})"
            )
    if sweeps:
        widest = max(sweeps, key=lambda entry: entry.get("width", 0))
        record = widest.get("record_locks", 0)
        page = max(widest.get("page_locks", 1), 1)
        if record / page < LOCK_REDUCTION_GATE:
            problems.append(
                f"widest scan: record/page lock ratio {record / page:.1f}x "
                f"< {LOCK_REDUCTION_GATE}x"
            )

    mixes = document.get("mixes", [])
    seen_cells = set()
    for cell in mixes:
        tag = f"{cell.get('arm')}/{cell.get('reader_level')}"
        seen_cells.add((cell.get("arm"), cell.get("reader_level")))
        if not cell.get("serializable"):
            problems.append(f"mix {tag}: history not MVSG-serializable")
        if not cell.get("lock_table_clean"):
            problems.append(f"mix {tag}: lock table dirty after quiesce")
        if cell.get("commits", 0) <= 0:
            problems.append(f"mix {tag}: committed nothing")
        queries = cell.get("queries", {})
        for query in REPORT_QUERIES:
            stats = queries.get(query)
            if stats is None or stats.get("commits", 0) <= 0:
                problems.append(f"mix {tag}: query {query} never committed")
    for arm in SCAN_ARMS:
        for reader_level in READER_LEVELS:
            if (arm, reader_level) not in seen_cells:
                problems.append(f"mix cell {arm}/{reader_level} missing")

    if problems:
        print(f"{path}: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"{path}: ok — paged {paged:.2f}x, chunked {chunked:.2f}x, "
        f"{len(mixes)} mix cells serializable with clean lock tables"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", help="write the capture (strict JSON) here")
    parser.add_argument("--quick", action="store_true",
                        help="smaller scale/counts (CI smoke)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate a committed capture instead of running")
    args = parser.parse_args(argv)

    if args.check:
        return check_document(args.check)

    print("reporting mix (scan kernel arms x reader levels):")
    document = capture(quick=args.quick)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
