"""Figure 6.18 — InnoDB TPC-C++ Stock Level Mix at tiny data scaling.

Paper result: shrinking the data concentrates the read-write conflicts
(every Stock Level scans the same few orders a New Order just touched);
the multiversion levels keep their lead over S2PL, and the extra lock
manager traffic of Serializable SI becomes more visible — the paper's
"carefully constructed, extreme case" where the lock manager itself can
limit SSI throughput.
"""

import pytest

from repro.bench.experiments import fig6_18

from conftest import run_figure

MPLS = [1, 5, 10]


@pytest.mark.benchmark(group="fig6.18")
def test_fig6_18_stocklevel_tiny(benchmark):
    outcome = run_figure(benchmark, fig6_18(), MPLS)

    si, ssi, s2pl = (outcome.throughput(level, 10) for level in ("si", "ssi", "s2pl"))
    assert si > s2pl * 0.9
    # SSI visibly pays lock-manager costs here but stays functional.
    assert ssi > si * 0.4
    # lock traffic: SSI acquires far more locks than SI
    ssi_locks = outcome.result("ssi", 10).engine_stats["locks"]["acquires"]
    si_locks = outcome.result("si", 10).engine_stats["locks"]["acquires"]
    assert ssi_locks > si_locks * 2
