"""Figures 6.6-6.8 — InnoDB sibench, mixed workload (1 query : 1 update),
table sizes 10 / 100 / 1000 rows.

Paper result: SI is the fastest at every size; Serializable SI tracks it
closely at 10 items but falls away as the table grows (the query must
take one SIREAD lock — plus a gap lock — per row, and that lock-manager
activity is the algorithm's intrinsic cost); S2PL is hurt at every size
because queries stall behind updates committing their log flush, and
updates stall behind query read locks.
"""

import pytest

from repro.bench.experiments import fig6_6, fig6_7, fig6_8

from conftest import run_figure

MPLS = [1, 5, 10, 20]


@pytest.mark.benchmark(group="fig6.6")
def test_fig6_6_sibench_10_items(benchmark):
    outcome = run_figure(benchmark, fig6_6(), MPLS)
    # Small table: SSI ~ SI, both clearly above S2PL.
    assert outcome.throughput("ssi", 20) > outcome.throughput("si", 20) * 0.85
    assert outcome.throughput("si", 20) > outcome.throughput("s2pl", 20) * 1.5
    # sibench has no write skew or deadlocks: nothing rolls back.
    for level in ("si", "ssi", "s2pl"):
        assert outcome.result(level, 20).cc_aborts == 0


@pytest.mark.benchmark(group="fig6.7")
def test_fig6_7_sibench_100_items(benchmark):
    outcome = run_figure(benchmark, fig6_7(), MPLS)
    si, ssi, s2pl = (outcome.throughput(level, 20) for level in ("si", "ssi", "s2pl"))
    assert si >= ssi  # SIREAD bookkeeping costs something now
    assert si > s2pl


@pytest.mark.benchmark(group="fig6.8")
def test_fig6_8_sibench_1000_items(benchmark):
    outcome = run_figure(benchmark, fig6_8(), [1, 5, 10])
    si, ssi, s2pl = (outcome.throughput(level, 10) for level in ("si", "ssi", "s2pl"))
    # Large table: SSI's per-row lock cost pulls it toward S2PL.
    assert si > ssi * 1.2
    assert ssi >= s2pl * 0.8
