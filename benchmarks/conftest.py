"""Shared helpers for the figure benchmarks.

Every file here regenerates one table/figure of the paper's evaluation:
it runs the experiment grid once under pytest-benchmark (wall time of the
full grid is the benchmarked quantity), prints the throughput and
error-rate series in the paper's layout, and asserts the paper's
*qualitative* claims (who wins, roughly by how much) as loose shape
checks.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))

from repro.bench.harness import run_experiment  # noqa: E402
from repro.bench.report import summarize  # noqa: E402


def run_figure(benchmark, experiment, mpls, levels=None):
    """Run one experiment grid under the benchmark fixture and print the
    paper-style tables."""
    outcome = benchmark.pedantic(
        lambda: run_experiment(experiment, mpls=mpls, levels=levels),
        rounds=1,
        iterations=1,
    )
    print()
    print(summarize(outcome))
    return outcome
