"""Shared helpers for the figure benchmarks.

Every file here regenerates one table/figure of the paper's evaluation:
it runs the experiment grid once under pytest-benchmark (wall time of the
full grid is the benchmarked quantity), prints the throughput and
error-rate series in the paper's layout, and asserts the paper's
*qualitative* claims (who wins, roughly by how much) as loose shape
checks.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))

from repro.bench.harness import run_experiment  # noqa: E402
from repro.bench.report import render_json, summarize, write_json  # noqa: E402


def run_figure(benchmark, experiment, mpls, levels=None):
    """Run one experiment grid under the benchmark fixture, print the
    paper-style tables and emit the machine-readable JSON report.

    The JSON rendering always runs (it validates that every counter in
    the grid survives strict serialisation — no ``Infinity``/``NaN``);
    the report is additionally written to
    ``$BENCH_JSON_DIR/BENCH_<exp_id>.json`` when that directory is set.
    """
    outcome = benchmark.pedantic(
        lambda: run_experiment(experiment, mpls=mpls, levels=levels),
        rounds=1,
        iterations=1,
    )
    print()
    print(summarize(outcome))
    json_dir = os.environ.get("BENCH_JSON_DIR")
    if json_dir:
        os.makedirs(json_dir, exist_ok=True)
        path = os.path.join(json_dir, f"BENCH_{outcome.experiment.exp_id}.json")
        write_json(outcome, path)
    else:
        render_json(outcome)
    return outcome
